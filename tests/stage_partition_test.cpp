/** @file Tests for Algorithm 1 (edge-coloring stage partition). */

#include <gtest/gtest.h>

#include <algorithm>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "schedule/stage_partition.hpp"
#include "workloads/qaoa.hpp"
#include "workloads/qft.hpp"

namespace powermove {
namespace {

CzBlock
blockOf(std::initializer_list<CzGate> gates)
{
    CzBlock block;
    for (const auto &gate : gates)
        block.gates.push_back(gate.canonical());
    return block;
}

std::vector<CzGate>
sortedGates(const std::vector<Stage> &stages)
{
    std::vector<CzGate> all;
    for (const auto &stage : stages)
        for (const auto &gate : stage.gates)
            all.push_back(gate.canonical());
    std::sort(all.begin(), all.end());
    return all;
}

TEST(InteractionGraphTest, EdgesJoinGatesSharingQubits)
{
    const auto block = blockOf({{0, 1}, {1, 2}, {3, 4}});
    const Graph g = buildInteractionGraph(block, 5);
    EXPECT_EQ(g.numVertices(), 3u);
    EXPECT_TRUE(g.hasEdge(0, 1));  // share qubit 1
    EXPECT_FALSE(g.hasEdge(0, 2));
    EXPECT_FALSE(g.hasEdge(1, 2));
}

TEST(InteractionGraphTest, RepeatedPairIsSingleConflict)
{
    const auto block = blockOf({{0, 1}, {0, 1}});
    const Graph g = buildInteractionGraph(block, 2);
    EXPECT_EQ(g.numEdges(), 1u);
}

TEST(StagePartitionTest, EmptyBlockYieldsNoStages)
{
    EXPECT_TRUE(partitionIntoStages(CzBlock{}, 4).empty());
}

TEST(StagePartitionTest, DisjointGatesShareOneStage)
{
    const auto stages =
        partitionIntoStages(blockOf({{0, 1}, {2, 3}, {4, 5}}), 6);
    ASSERT_EQ(stages.size(), 1u);
    EXPECT_EQ(stages[0].gates.size(), 3u);
}

TEST(StagePartitionTest, StarNeedsOneStagePerGate)
{
    // All gates share qubit 0.
    const auto stages =
        partitionIntoStages(blockOf({{0, 1}, {0, 2}, {0, 3}}), 4);
    EXPECT_EQ(stages.size(), 3u);
    for (const auto &stage : stages)
        EXPECT_EQ(stage.gates.size(), 1u);
}

TEST(StagePartitionTest, PathAlternates)
{
    const auto stages =
        partitionIntoStages(blockOf({{0, 1}, {1, 2}, {2, 3}, {3, 4}}), 5);
    EXPECT_EQ(stages.size(), 2u);
}

TEST(StagePartitionTest, PreservesGateMultiset)
{
    const auto block = blockOf({{0, 1}, {1, 2}, {2, 3}, {0, 3}, {1, 3}});
    const auto stages = partitionIntoStages(block, 4);
    auto expected = block.gates;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(sortedGates(stages), expected);
}

TEST(StagePartitionTest, StagesAreDisjoint)
{
    const auto block = blockOf({{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}});
    for (const auto &stage : partitionIntoStages(block, 6))
        EXPECT_TRUE(stage.qubitsDisjoint());
}

TEST(StageTest, InteractingQubitsSortedUnique)
{
    Stage stage;
    stage.gates = {CzGate{5, 2}, CzGate{1, 7}};
    EXPECT_EQ(stage.interactingQubits(), (std::vector<QubitId>{1, 2, 5, 7}));
}

TEST(StageTest, DisjointnessDetection)
{
    Stage good;
    good.gates = {CzGate{0, 1}, CzGate{2, 3}};
    EXPECT_TRUE(good.qubitsDisjoint());
    Stage bad;
    bad.gates = {CzGate{0, 1}, CzGate{1, 2}};
    EXPECT_FALSE(bad.qubitsDisjoint());
}

/** Property sweep over QAOA instances: partition validity and quality. */
class PartitionProperty : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(PartitionProperty, QaoaBlocksPartitionProperly)
{
    const std::size_t n = GetParam();
    const Circuit circuit = makeQaoaRegular(n, 3, 1, n);
    for (const auto *block : circuit.blocks()) {
        const auto stages = partitionIntoStages(*block, n);
        // Validity.
        std::size_t total = 0;
        for (const auto &stage : stages) {
            EXPECT_TRUE(stage.qubitsDisjoint());
            EXPECT_FALSE(stage.gates.empty());
            total += stage.gates.size();
        }
        EXPECT_EQ(total, block->gates.size());
        // Quality: greedy edge coloring of a cubic graph needs at most
        // 2*3 - 1 colors (line-graph max degree bound), usually 3-4.
        EXPECT_LE(stages.size(), 5u);
        EXPECT_GE(stages.size(), 3u); // chromatic index >= max degree
    }
}

INSTANTIATE_TEST_SUITE_P(QaoaSizes, PartitionProperty,
                         ::testing::Values(10, 20, 30, 50, 80, 100));

TEST(StagePartitionTest, QftBlocksAreSequentialChains)
{
    const Circuit qft = makeQft(8);
    const auto blocks = qft.blocks();
    // Block k has 7-k gates all sharing the target qubit: one per stage.
    ASSERT_EQ(blocks.size(), 7u);
    for (std::size_t k = 0; k < blocks.size(); ++k) {
        const auto stages = partitionIntoStages(*blocks[k], 8);
        EXPECT_EQ(stages.size(), blocks[k]->gates.size());
    }
}

} // namespace
} // namespace powermove
