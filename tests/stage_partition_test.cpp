/** @file Tests for Algorithm 1 (edge-coloring stage partition).
 *
 * Covers the three StagePartitionStrategy implementations: the paper's
 * graph coloring, the graph-free linear scan (locked bit-identical to
 * coloring, differentially over the Table 2 suite plus depth-2 VQE),
 * and the width-balanced variant (same stage count, qubit-disjoint,
 * coverage-complete), plus randomized-block partition properties.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "schedule/stage_partition.hpp"
#include "workloads/qaoa.hpp"
#include "workloads/qft.hpp"
#include "workloads/suite.hpp"
#include "workloads/vqe.hpp"

namespace powermove {
namespace {

CzBlock
blockOf(std::initializer_list<CzGate> gates)
{
    CzBlock block;
    for (const auto &gate : gates)
        block.gates.push_back(gate.canonical());
    return block;
}

std::vector<CzGate>
sortedGates(const std::vector<Stage> &stages)
{
    std::vector<CzGate> all;
    for (const auto &stage : stages)
        for (const auto &gate : stage.gates)
            all.push_back(gate.canonical());
    std::sort(all.begin(), all.end());
    return all;
}

TEST(InteractionGraphTest, EdgesJoinGatesSharingQubits)
{
    const auto block = blockOf({{0, 1}, {1, 2}, {3, 4}});
    const Graph g = buildInteractionGraph(block, 5);
    EXPECT_EQ(g.numVertices(), 3u);
    EXPECT_TRUE(g.hasEdge(0, 1));  // share qubit 1
    EXPECT_FALSE(g.hasEdge(0, 2));
    EXPECT_FALSE(g.hasEdge(1, 2));
}

TEST(InteractionGraphTest, RepeatedPairIsSingleConflict)
{
    const auto block = blockOf({{0, 1}, {0, 1}});
    const Graph g = buildInteractionGraph(block, 2);
    EXPECT_EQ(g.numEdges(), 1u);
}

/**
 * Regression: two gates sharing *both* qubits sit in both qubits' sharer
 * lists, so the naive clique expansion emits their edge twice; the
 * builder must deduplicate the pair itself rather than lean on
 * Graph::addEdge's linear duplicate scan (which keeps the *output*
 * identical either way — the graph checks here lock that output, while
 * the builder's duplicate-insertion PM_ASSERT is what makes a reverted
 * guard fail this test loudly instead of just running slower).
 */
TEST(InteractionGraphTest, BothQubitsSharedPairsAreDeduplicated)
{
    // Three copies of {0,1} (pairwise conflicts via both qubits) plus
    // one {1,2} that conflicts each copy through qubit 1 only.
    const auto block = blockOf({{0, 1}, {0, 1}, {0, 1}, {1, 2}});
    const Graph g = buildInteractionGraph(block, 3);
    EXPECT_EQ(g.numEdges(), 6u); // triangle (3) + one edge to each copy

    auto edges = g.edges();
    std::sort(edges.begin(), edges.end());
    EXPECT_TRUE(std::adjacent_find(edges.begin(), edges.end()) ==
                edges.end())
        << "duplicate edge in edge list";

    for (Graph::Vertex v = 0; v < 4; ++v) {
        auto neighbors = g.adjacents(v);
        std::sort(neighbors.begin(), neighbors.end());
        EXPECT_TRUE(std::adjacent_find(neighbors.begin(), neighbors.end()) ==
                    neighbors.end())
            << "duplicate neighbor of gate " << v;
        EXPECT_EQ(neighbors.size(), 3u); // every other gate, exactly once
    }
}

TEST(StagePartitionTest, EmptyBlockYieldsNoStages)
{
    EXPECT_TRUE(partitionIntoStages(CzBlock{}, 4).empty());
}

TEST(StagePartitionTest, DisjointGatesShareOneStage)
{
    const auto stages =
        partitionIntoStages(blockOf({{0, 1}, {2, 3}, {4, 5}}), 6);
    ASSERT_EQ(stages.size(), 1u);
    EXPECT_EQ(stages[0].gates.size(), 3u);
}

TEST(StagePartitionTest, StarNeedsOneStagePerGate)
{
    // All gates share qubit 0.
    const auto stages =
        partitionIntoStages(blockOf({{0, 1}, {0, 2}, {0, 3}}), 4);
    EXPECT_EQ(stages.size(), 3u);
    for (const auto &stage : stages)
        EXPECT_EQ(stage.gates.size(), 1u);
}

TEST(StagePartitionTest, PathAlternates)
{
    const auto stages =
        partitionIntoStages(blockOf({{0, 1}, {1, 2}, {2, 3}, {3, 4}}), 5);
    EXPECT_EQ(stages.size(), 2u);
}

TEST(StagePartitionTest, PreservesGateMultiset)
{
    const auto block = blockOf({{0, 1}, {1, 2}, {2, 3}, {0, 3}, {1, 3}});
    const auto stages = partitionIntoStages(block, 4);
    auto expected = block.gates;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(sortedGates(stages), expected);
}

TEST(StagePartitionTest, StagesAreDisjoint)
{
    const auto block = blockOf({{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}});
    for (const auto &stage : partitionIntoStages(block, 6))
        EXPECT_TRUE(stage.qubitsDisjoint());
}

TEST(StageTest, InteractingQubitsSortedUnique)
{
    Stage stage;
    stage.gates = {CzGate{5, 2}, CzGate{1, 7}};
    EXPECT_EQ(stage.interactingQubits(), (std::vector<QubitId>{1, 2, 5, 7}));
}

TEST(StageTest, DisjointnessDetection)
{
    Stage good;
    good.gates = {CzGate{0, 1}, CzGate{2, 3}};
    EXPECT_TRUE(good.qubitsDisjoint());
    Stage bad;
    bad.gates = {CzGate{0, 1}, CzGate{1, 2}};
    EXPECT_FALSE(bad.qubitsDisjoint());
}

/** Property sweep over QAOA instances: partition validity and quality. */
class PartitionProperty : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(PartitionProperty, QaoaBlocksPartitionProperly)
{
    const std::size_t n = GetParam();
    const Circuit circuit = makeQaoaRegular(n, 3, 1, n);
    for (const auto *block : circuit.blocks()) {
        const auto stages = partitionIntoStages(*block, n);
        // Validity.
        std::size_t total = 0;
        for (const auto &stage : stages) {
            EXPECT_TRUE(stage.qubitsDisjoint());
            EXPECT_FALSE(stage.gates.empty());
            total += stage.gates.size();
        }
        EXPECT_EQ(total, block->gates.size());
        // Quality: greedy edge coloring of a cubic graph needs at most
        // 2*3 - 1 colors (line-graph max degree bound), usually 3-4.
        EXPECT_LE(stages.size(), 5u);
        EXPECT_GE(stages.size(), 3u); // chromatic index >= max degree
    }
}

INSTANTIATE_TEST_SUITE_P(QaoaSizes, PartitionProperty,
                         ::testing::Values(10, 20, 30, 50, 80, 100));

TEST(StagePartitionTest, QftBlocksAreSequentialChains)
{
    const Circuit qft = makeQft(8);
    const auto blocks = qft.blocks();
    // Block k has 7-k gates all sharing the target qubit: one per stage.
    ASSERT_EQ(blocks.size(), 7u);
    for (std::size_t k = 0; k < blocks.size(); ++k) {
        const auto stages = partitionIntoStages(*blocks[k], 8);
        EXPECT_EQ(stages.size(), blocks[k]->gates.size());
    }
}

// ------------------------------------------- strategy differential tests

bool
identicalStages(const std::vector<Stage> &a, const std::vector<Stage> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t s = 0; s < a.size(); ++s) {
        if (a[s].gates != b[s].gates)
            return false;
    }
    return true;
}

std::size_t
maxStageWidth(const std::vector<Stage> &stages)
{
    std::size_t widest = 0;
    for (const auto &stage : stages)
        widest = std::max(widest, stage.gates.size());
    return widest;
}

/** Every Table 2 circuit plus the depth-2 VQE multi-block workload. */
std::vector<std::pair<std::string, Circuit>>
differentialCircuits()
{
    std::vector<std::pair<std::string, Circuit>> circuits;
    for (const BenchmarkSpec &spec : table2Suite())
        circuits.emplace_back(spec.name, spec.build());
    circuits.emplace_back(
        "VQE-depth2-30",
        makeVqe(30, 2, VqeEntanglement::Linear, 0xF00D + 30));
    return circuits;
}

/**
 * The tentpole identity: the graph-free linear scan must reproduce the
 * edge-coloring stage assignment bit-for-bit — same greedy order, same
 * colors, same gate order within every stage — on every block of every
 * Table 2 entry plus depth-2 VQE.
 */
TEST(StagePartitionDifferentialTest, LinearIsBitIdenticalToColoring)
{
    for (const auto &[name, circuit] : differentialCircuits()) {
        std::size_t index = 0;
        for (const CzBlock *block : circuit.blocks()) {
            const auto coloring =
                partitionIntoStages(*block, circuit.numQubits());
            const auto linear =
                partitionIntoStagesLinear(*block, circuit.numQubits());
            EXPECT_TRUE(identicalStages(coloring, linear))
                << name << " block " << index;
            ++index;
        }
    }
}

/**
 * Balanced keeps the coloring's stage count (its rebalance never opens
 * or empties a stage) and still emits qubit-disjoint stages covering
 * the block's exact gate multiset, with max stage width never above
 * the coloring's.
 */
TEST(StagePartitionDifferentialTest, BalancedKeepsCountCoverageDisjointness)
{
    for (const auto &[name, circuit] : differentialCircuits()) {
        std::size_t index = 0;
        for (const CzBlock *block : circuit.blocks()) {
            const auto coloring =
                partitionIntoStages(*block, circuit.numQubits());
            const auto balanced =
                partitionIntoStagesBalanced(*block, circuit.numQubits());
            EXPECT_EQ(balanced.size(), coloring.size())
                << name << " block " << index;
            EXPECT_EQ(sortedGates(balanced), sortedGates(coloring))
                << name << " block " << index;
            EXPECT_LE(maxStageWidth(balanced), maxStageWidth(coloring))
                << name << " block " << index;
            for (const auto &stage : balanced) {
                EXPECT_TRUE(stage.qubitsDisjoint())
                    << name << " block " << index;
                EXPECT_FALSE(stage.gates.empty())
                    << name << " block " << index;
            }
            ++index;
        }
    }
}

TEST(StagePartitionDifferentialTest, DispatchSelectsTheStrategy)
{
    const auto block = blockOf({{0, 1}, {1, 2}, {2, 3}, {0, 3}, {1, 3}});
    EXPECT_TRUE(identicalStages(
        partitionIntoStagesBy(StagePartitionStrategy::Coloring, block, 4),
        partitionIntoStages(block, 4)));
    EXPECT_TRUE(identicalStages(
        partitionIntoStagesBy(StagePartitionStrategy::Linear, block, 4),
        partitionIntoStagesLinear(block, 4)));
    EXPECT_TRUE(identicalStages(
        partitionIntoStagesBy(StagePartitionStrategy::Balanced, block, 4),
        partitionIntoStagesBalanced(block, 4)));
}

// -------------------------------------------- randomized-block properties

CzBlock
randomBlock(std::size_t num_qubits, std::size_t num_gates, std::uint64_t seed)
{
    Rng rng(seed);
    CzBlock block;
    while (block.gates.size() < num_gates) {
        const auto a = static_cast<QubitId>(rng.nextBelow(num_qubits));
        const auto b = static_cast<QubitId>(rng.nextBelow(num_qubits));
        // Duplicate pairs (and both orientations) deliberately allowed.
        if (a != b)
            block.gates.push_back(CzGate{a, b});
    }
    return block;
}

constexpr StagePartitionStrategy kAllStrategies[] = {
    StagePartitionStrategy::Coloring,
    StagePartitionStrategy::Linear,
    StagePartitionStrategy::Balanced,
};

struct RandomBlockCase
{
    std::uint64_t seed;
    std::size_t num_qubits;
    std::size_t num_gates;
};

class RandomBlockProperty : public ::testing::TestWithParam<RandomBlockCase>
{};

/**
 * Invariants every partitioner must uphold on adversarial blocks (dense
 * overlap, duplicate pairs): each gate lands in exactly one stage,
 * stages are qubit-disjoint and non-empty, the stage count never
 * exceeds the greedy-coloring bound (max gate-conflict degree + 1,
 * where a gate's conflict degree is at most the summed gate counts of
 * its two qubits), and repeated runs are bit-identical.
 */
TEST_P(RandomBlockProperty, PartitionsValidlyAndDeterministically)
{
    const auto param = GetParam();
    const CzBlock block =
        randomBlock(param.num_qubits, param.num_gates, param.seed);
    const std::size_t degree_bound =
        buildInteractionGraph(block, param.num_qubits).maxDegree() + 1;

    auto expected = block.gates;
    std::sort(expected.begin(), expected.end());

    for (const StagePartitionStrategy strategy : kAllStrategies) {
        const auto stages =
            partitionIntoStagesBy(strategy, block, param.num_qubits);
        for (const auto &stage : stages) {
            EXPECT_TRUE(stage.qubitsDisjoint());
            EXPECT_FALSE(stage.gates.empty());
        }
        // Every gate in exactly one stage: the concatenation is a
        // permutation of the block (multiset equality + size match).
        std::vector<CzGate> all;
        for (const auto &stage : stages)
            for (const auto &gate : stage.gates)
                all.push_back(gate);
        EXPECT_EQ(all.size(), block.gates.size());
        std::sort(all.begin(), all.end());
        EXPECT_EQ(all, expected);

        EXPECT_LE(stages.size(), degree_bound);

        const auto again =
            partitionIntoStagesBy(strategy, block, param.num_qubits);
        EXPECT_TRUE(identicalStages(stages, again))
            << "nondeterministic partition, strategy "
            << stagePartitionStrategyName(strategy);
    }
}

INSTANTIATE_TEST_SUITE_P(
    RandomBlocks, RandomBlockProperty,
    ::testing::Values(RandomBlockCase{1, 4, 3}, RandomBlockCase{2, 5, 12},
                      RandomBlockCase{3, 8, 40}, RandomBlockCase{4, 12, 80},
                      RandomBlockCase{5, 16, 30}, RandomBlockCase{6, 24, 150},
                      RandomBlockCase{7, 40, 400},
                      RandomBlockCase{8, 64, 600}));

} // namespace
} // namespace powermove
