/** @file Tests for the pass-pipeline compiler core. */

#include <gtest/gtest.h>

#include "arch/layout.hpp"
#include "collsched/intra_stage.hpp"
#include "collsched/multi_aod.hpp"
#include "compiler/pipeline.hpp"
#include "compiler/powermove.hpp"
#include "isa/json.hpp"
#include "isa/validator.hpp"
#include "route/grouping.hpp"
#include "route/router.hpp"
#include "schedule/stage_order.hpp"
#include "schedule/stage_partition.hpp"
#include "workloads/suite.hpp"

namespace powermove {
namespace {

/**
 * The pre-pipeline monolithic compiler, reproduced verbatim from the
 * seed's PowerMoveCompiler::compile() out of the same public building
 * blocks. The pipeline regression below holds the refactored compiler
 * to this reference bit-for-bit under default options.
 */
MachineSchedule
legacyCompile(const Machine &machine, const Circuit &circuit,
              const CompilerOptions &options)
{
    Layout layout(machine, circuit.numQubits());
    placeRowMajor(layout,
                  options.use_storage ? ZoneKind::Storage : ZoneKind::Compute);

    std::vector<SiteId> initial_sites(circuit.numQubits());
    for (QubitId q = 0; q < circuit.numQubits(); ++q)
        initial_sites[q] = layout.siteOf(q);

    MachineSchedule schedule(machine, std::move(initial_sites));
    ContinuousRouter router(machine, {options.use_storage, options.seed});
    const StageOrderOptions order_options{options.stage_order_alpha};

    std::size_t block_index = 0;
    for (const auto &moment : circuit.moments()) {
        if (const auto *one_q = std::get_if<OneQLayer>(&moment)) {
            schedule.addOneQLayer(one_q->gates.size(),
                                  one_q->depth(circuit.numQubits()));
            continue;
        }
        const auto &block = std::get<CzBlock>(moment);
        auto stages = partitionIntoStages(block, circuit.numQubits());
        stages = orderStages(std::move(stages), order_options);
        for (const auto &stage : stages) {
            const TransitionPlan plan =
                router.planStageTransition(layout, stage);
            auto groups = groupMoves(machine, plan.moves);
            groups = orderCollMoves(machine, std::move(groups));
            for (auto &batch :
                 batchForAods(machine, std::move(groups), options.num_aods,
                              options.aod_batch_policy)) {
                schedule.addMoveBatch(std::move(batch));
            }
            schedule.addRydberg(stage.gates, block_index);
        }
        ++block_index;
    }
    return schedule;
}

/**
 * Acceptance: with default CompilerOptions the pass pipeline emits
 * bit-identical MachineSchedules to the pre-refactor compiler across
 * the whole Table 2 suite, in both zone configurations.
 */
TEST(PipelineRegressionTest, DefaultOptionsMatchLegacyCompilerBitForBit)
{
    for (const BenchmarkSpec &spec : table2Suite()) {
        const Machine machine(spec.machine_config);
        const Circuit circuit = spec.build();
        for (const bool use_storage : {true, false}) {
            CompilerOptions options;
            options.use_storage = use_storage;
            const auto result =
                PowerMoveCompiler(machine, options).compile(circuit);
            const MachineSchedule legacy =
                legacyCompile(machine, circuit, options);
            // Serialized instruction streams compare every field of
            // every instruction plus the initial sites.
            EXPECT_EQ(scheduleToJson(result.schedule), scheduleToJson(legacy))
                << spec.name << (use_storage ? " with" : " without")
                << " storage diverged from the pre-pipeline compiler";
        }
    }
}

TEST(PipelineProfileTest, ProfilesCoverTheSixPassesWithSaneTimes)
{
    const auto spec = findBenchmark("QAOA-regular3-30");
    const Machine machine(spec.machine_config);
    const auto result = PowerMoveCompiler(machine).compile(spec.build());

    // All six passes run for a storage-mode QAOA circuit.
    ASSERT_EQ(result.pass_profiles.size(), kNumPasses);
    double sum_micros = 0.0;
    for (std::size_t i = 0; i < result.pass_profiles.size(); ++i) {
        const PassProfile &profile = result.pass_profiles[i];
        EXPECT_EQ(profile.pass, static_cast<PassId>(i)); // pipeline order
        EXPECT_GE(profile.wall_time.micros(), 0.0);
        EXPECT_GT(profile.invocations, 0u);
        sum_micros += profile.wall_time.micros();
    }
    // Pass times nest inside the end-to-end compile time.
    EXPECT_LE(sum_micros, result.compile_time.micros());

    // Inner passes ran once per stage, the placement exactly once.
    EXPECT_EQ(result.pass_profiles[0].invocations, 1u);
    EXPECT_EQ(result.pass_profiles[3].invocations, result.num_stages);
}

TEST(PipelineProfileTest, CountersAreDeterministicAcrossRuns)
{
    const auto spec = findBenchmark("QSIM-rand-0.3-10");
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();
    const PowerMoveCompiler compiler(machine);

    const auto a = compiler.compile(circuit);
    const auto b = compiler.compile(circuit);
    ASSERT_EQ(a.pass_profiles.size(), b.pass_profiles.size());
    for (std::size_t i = 0; i < a.pass_profiles.size(); ++i) {
        EXPECT_EQ(a.pass_profiles[i].pass, b.pass_profiles[i].pass);
        EXPECT_EQ(a.pass_profiles[i].invocations,
                  b.pass_profiles[i].invocations);
        ASSERT_EQ(a.pass_profiles[i].counters.size(),
                  b.pass_profiles[i].counters.size());
        for (std::size_t c = 0; c < a.pass_profiles[i].counters.size(); ++c) {
            EXPECT_EQ(a.pass_profiles[i].counters[c].name,
                      b.pass_profiles[i].counters[c].name);
            EXPECT_EQ(a.pass_profiles[i].counters[c].value,
                      b.pass_profiles[i].counters[c].value);
        }
    }
}

TEST(PipelineProfileTest, RoutingCountersMatchScheduleFacts)
{
    const auto spec = findBenchmark("BV-14");
    const Machine machine(spec.machine_config);
    const auto result = PowerMoveCompiler(machine).compile(spec.build());

    const PassProfile *routing = nullptr;
    for (const PassProfile &profile : result.pass_profiles) {
        if (profile.pass == PassId::Routing)
            routing = &profile;
    }
    ASSERT_NE(routing, nullptr);
    std::uint64_t moves_planned = 0;
    for (const PassCounter &counter : routing->counters) {
        if (counter.name == "moves_planned")
            moves_planned = counter.value;
    }
    EXPECT_EQ(moves_planned, result.schedule.numQubitMoves());
}

TEST(PipelineProfileTest, DisablingProfilesKeepsTheScheduleBitIdentical)
{
    const auto spec = findBenchmark("QFT-18");
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();

    CompilerOptions unprofiled;
    unprofiled.profile_passes = false;
    const auto off = PowerMoveCompiler(machine, unprofiled).compile(circuit);
    EXPECT_TRUE(off.pass_profiles.empty());

    const auto on = PowerMoveCompiler(machine).compile(circuit);
    EXPECT_FALSE(on.pass_profiles.empty());
    EXPECT_EQ(scheduleToJson(off.schedule), scheduleToJson(on.schedule));
}

/** Every placement strategy yields a valid, complete schedule. */
class PlacementStrategyProperty
    : public ::testing::TestWithParam<PlacementStrategy>
{};

TEST_P(PlacementStrategyProperty, CompilesValidSchedules)
{
    const auto spec = findBenchmark("QAOA-random-20");
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();

    CompilerOptions options;
    options.placement = GetParam();
    const auto result = PowerMoveCompiler(machine, options).compile(circuit);
    EXPECT_NO_THROW(validateAgainstCircuit(result.schedule, circuit));
    EXPECT_EQ(result.metrics.excitation_exposures, 0u); // storage mode
}

INSTANTIATE_TEST_SUITE_P(Strategies, PlacementStrategyProperty,
                         ::testing::Values(
                             PlacementStrategy::RowMajor,
                             PlacementStrategy::ColumnInterleaved,
                             PlacementStrategy::UsageFrequency));

TEST(PlacementStrategyTest, StrategiesProduceDistinctInitialLayouts)
{
    // BV couples every secret-bit qubit to one ancilla, so the CZ-count
    // ranking is guaranteed non-uniform (unlike regular QAOA graphs,
    // where equal degrees make usage-frequency collapse to row-major).
    const auto spec = findBenchmark("BV-14");
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();

    auto initial_sites = [&](PlacementStrategy strategy) {
        CompilerOptions options;
        options.placement = strategy;
        return PowerMoveCompiler(machine, options)
            .compile(circuit)
            .schedule.initialSites();
    };
    const auto row_major = initial_sites(PlacementStrategy::RowMajor);
    const auto interleaved =
        initial_sites(PlacementStrategy::ColumnInterleaved);
    const auto usage = initial_sites(PlacementStrategy::UsageFrequency);
    EXPECT_NE(row_major, interleaved);
    EXPECT_NE(row_major, usage);
}

TEST(PlacementStrategyTest, ColumnInterleavedTransposesRowMajor)
{
    const Machine machine(MachineConfig::forQubits(9)); // 3x3 compute
    Layout row(machine, 4), col(machine, 4);
    placeRowMajor(row, ZoneKind::Compute);
    placeColumnInterleaved(col, ZoneKind::Compute);

    // Row-major fills row 0 first; column-major fills column 0 first.
    for (QubitId q = 0; q < 4; ++q) {
        const SiteCoord r = machine.coordOf(row.siteOf(q));
        const SiteCoord c = machine.coordOf(col.siteOf(q));
        EXPECT_EQ(r.x, c.y);
        EXPECT_EQ(r.y, c.x);
    }
}

TEST(PlacementStrategyTest, UsageFrequencyRanksHotQubitsFirst)
{
    const Machine machine(MachineConfig::forQubits(9));
    Layout layout(machine, 3);
    // Qubit 2 is hottest, then 0, then 1.
    placeByUsageFrequency(layout, ZoneKind::Storage, {3, 1, 7});

    const auto storage = machine.storageSites();
    EXPECT_EQ(layout.siteOf(2), storage[0]); // closest to compute
    EXPECT_EQ(layout.siteOf(0), storage[1]);
    EXPECT_EQ(layout.siteOf(1), storage[2]);
}

TEST(StrategySelectionTest, AblationStrategiesMatchTheInlineBaselines)
{
    const auto spec = findBenchmark("QSIM-rand-0.3-10");
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();

    // AsPartitioned must equal "skip orderStages" in the legacy loop;
    // cheapest check: it differs from ZoneAware for a circuit where the
    // scheduler actually reorders, yet still validates.
    CompilerOptions raw_order;
    raw_order.stage_order = StageOrderStrategy::AsPartitioned;
    const auto raw = PowerMoveCompiler(machine, raw_order).compile(circuit);
    EXPECT_NO_THROW(validateAgainstCircuit(raw.schedule, circuit));

    CompilerOptions raw_groups;
    raw_groups.coll_move_order = CollMoveOrderStrategy::AsGrouped;
    const auto grouped =
        PowerMoveCompiler(machine, raw_groups).compile(circuit);
    EXPECT_NO_THROW(validateAgainstCircuit(grouped.schedule, circuit));
}

TEST(StrategyNameTest, NamesRoundTripThroughParsing)
{
    for (const auto strategy :
         {PlacementStrategy::RowMajor, PlacementStrategy::ColumnInterleaved,
          PlacementStrategy::UsageFrequency}) {
        PlacementStrategy parsed{};
        EXPECT_TRUE(
            parsePlacementStrategy(placementStrategyName(strategy), parsed));
        EXPECT_EQ(parsed, strategy);
    }
    for (const auto strategy :
         {StageOrderStrategy::AsPartitioned, StageOrderStrategy::ZoneAware}) {
        StageOrderStrategy parsed{};
        EXPECT_TRUE(
            parseStageOrderStrategy(stageOrderStrategyName(strategy), parsed));
        EXPECT_EQ(parsed, strategy);
    }
    for (const auto strategy : {CollMoveOrderStrategy::AsGrouped,
                                CollMoveOrderStrategy::StorageDwell}) {
        CollMoveOrderStrategy parsed{};
        EXPECT_TRUE(parseCollMoveOrderStrategy(
            collMoveOrderStrategyName(strategy), parsed));
        EXPECT_EQ(parsed, strategy);
    }
    for (const auto policy :
         {AodBatchPolicy::InOrder, AodBatchPolicy::DurationBalanced}) {
        AodBatchPolicy parsed{};
        EXPECT_TRUE(parseAodBatchPolicy(aodBatchPolicyName(policy), parsed));
        EXPECT_EQ(parsed, policy);
    }
    PlacementStrategy untouched = PlacementStrategy::UsageFrequency;
    EXPECT_FALSE(parsePlacementStrategy("bogus", untouched));
    EXPECT_EQ(untouched, PlacementStrategy::UsageFrequency);
}

TEST(PassProfileMergeTest, MergeAddsTimesInvocationsAndCounters)
{
    std::vector<PassProfile> totals;
    PassProfile routing;
    routing.pass = PassId::Routing;
    routing.wall_time = Duration::micros(5.0);
    routing.invocations = 2;
    routing.counters = {{"moves_planned", 10}};
    mergePassProfiles(totals, {routing});

    PassProfile more = routing;
    more.wall_time = Duration::micros(3.0);
    more.invocations = 1;
    more.counters = {{"moves_planned", 4}, {"qubits_parked", 2}};
    PassProfile placement;
    placement.pass = PassId::Placement;
    placement.invocations = 1;
    mergePassProfiles(totals, {more, placement});

    ASSERT_EQ(totals.size(), 2u);
    // Pipeline order restored even though routing arrived first.
    EXPECT_EQ(totals[0].pass, PassId::Placement);
    EXPECT_EQ(totals[1].pass, PassId::Routing);
    EXPECT_DOUBLE_EQ(totals[1].wall_time.micros(), 8.0);
    EXPECT_EQ(totals[1].invocations, 3u);
    ASSERT_EQ(totals[1].counters.size(), 2u);
    EXPECT_EQ(totals[1].counters[0].value, 14u);
    EXPECT_EQ(totals[1].counters[1].value, 2u);
}

} // namespace
} // namespace powermove
