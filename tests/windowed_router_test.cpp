/** @file Tests for the windowed high-quality router.
 *
 * The windowed router evaluates a bounded window of candidate gate
 * orderings per transition and commits the cheapest plan. It trades
 * planning time for movement quality, so the tests pin three things:
 * the committed plan still satisfies every router post-condition, the
 * search is deterministic (same seed + window => same plan, regardless
 * of how earlier transitions went elsewhere), and the accounting
 * (num_candidates / num_window_wins) reflects the search that ran.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/error.hpp"
#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "compiler/powermove.hpp"
#include "isa/validator.hpp"
#include "route/router.hpp"
#include "route/windowed_router.hpp"
#include "workloads/suite.hpp"

namespace powermove {
namespace {

Stage
randomStage(Rng &rng, std::size_t num_qubits)
{
    std::vector<QubitId> qubits(num_qubits);
    for (QubitId q = 0; q < num_qubits; ++q)
        qubits[q] = q;
    rng.shuffle(qubits);
    const std::size_t pairs = 1 + rng.nextBelow(num_qubits / 2);
    Stage stage;
    for (std::size_t p = 0; p < pairs; ++p)
        stage.gates.push_back(
            CzGate{qubits[2 * p], qubits[2 * p + 1]}.canonical());
    return stage;
}

/** Same post-condition check the continuous-router tests use. */
void
checkStageLayout(const Machine &machine, const Layout &layout,
                 const Stage &stage, bool use_storage)
{
    std::vector<bool> interacting(layout.numQubits(), false);
    for (const auto &gate : stage.gates) {
        EXPECT_EQ(layout.siteOf(gate.a), layout.siteOf(gate.b));
        EXPECT_EQ(layout.zoneOf(gate.a), ZoneKind::Compute);
        interacting[gate.a] = true;
        interacting[gate.b] = true;
    }
    std::map<SiteId, std::vector<QubitId>> by_site;
    for (QubitId q = 0; q < layout.numQubits(); ++q)
        by_site[layout.siteOf(q)].push_back(q);
    for (const auto &[site, occupants] : by_site) {
        ASSERT_LE(occupants.size(), 2u);
        if (occupants.size() == 2) {
            EXPECT_TRUE(interacting[occupants[0]]);
            EXPECT_TRUE(interacting[occupants[1]]);
            EXPECT_EQ(machine.zoneOf(site), ZoneKind::Compute);
        }
    }
    if (use_storage) {
        for (QubitId q = 0; q < layout.numQubits(); ++q) {
            if (!interacting[q]) {
                EXPECT_EQ(layout.zoneOf(q), ZoneKind::Storage);
            }
        }
    }
}

double
totalMoveDistance(const Machine &machine, const TransitionPlan &plan)
{
    double total = 0.0;
    for (const auto &move : plan.moves)
        total += machine.distanceBetween(move.from, move.to).microns();
    return total;
}

class WindowedRouterTest
    : public ::testing::TestWithParam<std::tuple<bool, std::uint32_t>>
{};

TEST_P(WindowedRouterTest, RandomSequencesSatisfyPostConditions)
{
    const auto [use_storage, window] = GetParam();
    const std::size_t n = 20;
    const Machine machine(MachineConfig::forQubits(n));
    Rng rng(42);
    WindowedRouter router(machine, RouterOptions{use_storage, 42}, window,
                          rng);

    Layout layout(machine, n);
    placeRowMajor(layout,
                  use_storage ? ZoneKind::Storage : ZoneKind::Compute);

    Rng stage_rng(7);
    for (int step = 0; step < 25; ++step) {
        const Stage stage = randomStage(stage_rng, n);
        const auto plan = router.planStageTransition(layout, stage);
        checkStageLayout(machine, layout, stage, use_storage);
        EXPECT_EQ(plan.num_candidates, window) << "step " << step;
        // Candidate 0 never counts as a win, so at most window-1 of the
        // shuffled orderings can each beat the running incumbent.
        EXPECT_LT(plan.num_window_wins, window) << "step " << step;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, WindowedRouterTest,
    ::testing::Combine(::testing::Bool(), ::testing::Values(1u, 2u, 8u)));

TEST(WindowedRouterDeterminismTest, SameSeedAndWindowReplayIdentically)
{
    const std::size_t n = 18;
    const Machine machine(MachineConfig::forQubits(n));

    for (const std::uint32_t window : {1u, 6u}) {
        Rng rng_a(9), rng_b(9);
        WindowedRouter a(machine, RouterOptions{true, 9}, window, rng_a);
        WindowedRouter b(machine, RouterOptions{true, 9}, window, rng_b);
        Layout layout_a(machine, n), layout_b(machine, n);
        placeRowMajor(layout_a, ZoneKind::Storage);
        layout_b.assignFrom(layout_a);

        Rng stage_rng(31);
        for (int step = 0; step < 15; ++step) {
            const Stage stage = randomStage(stage_rng, n);
            const auto plan_a = a.planStageTransition(layout_a, stage);
            const auto plan_b = b.planStageTransition(layout_b, stage);
            EXPECT_EQ(plan_a.moves, plan_b.moves) << "step " << step;
            EXPECT_EQ(plan_a.labels, plan_b.labels) << "step " << step;
            EXPECT_EQ(plan_a.num_window_wins, plan_b.num_window_wins);
        }
    }
}

/**
 * A window of 1 evaluates exactly the original gate order, so the
 * committed plan must cost no more than what a wider window finds —
 * and a wider window may only ever improve (or tie) the chosen cost,
 * never regress it, because the original order is always candidate 0.
 */
TEST(WindowedRouterQualityTest, WiderWindowNeverCostsMoreAtEachStep)
{
    const std::size_t n = 22;
    const Machine machine(MachineConfig::forQubits(n));
    Rng rng_narrow(4), rng_wide(4);
    WindowedRouter narrow(machine, RouterOptions{true, 4}, 1, rng_narrow);
    WindowedRouter wide(machine, RouterOptions{true, 4}, 8, rng_wide);
    Layout layout_narrow(machine, n), layout_wide(machine, n);
    placeRowMajor(layout_narrow, ZoneKind::Storage);
    layout_wide.assignFrom(layout_narrow);

    // Both routers draw one derivation value per transition from
    // equally seeded streams, so at every step the wide window's
    // candidate 0 is exactly the narrow router's plan; the layouts can
    // drift apart once a shuffle wins, so the narrow side re-syncs to
    // keep each step an apples-to-apples comparison.
    Rng stage_rng(13);
    for (int step = 0; step < 20; ++step) {
        const Stage stage = randomStage(stage_rng, n);
        const auto plan_narrow =
            narrow.planStageTransition(layout_narrow, stage);
        const auto plan_wide = wide.planStageTransition(layout_wide, stage);
        EXPECT_LE(totalMoveDistance(machine, plan_wide),
                  totalMoveDistance(machine, plan_narrow) + 1e-9)
            << "step " << step;
        layout_narrow.assignFrom(layout_wide);
    }
}

TEST(WindowedRouterPipelineTest, CompilesTable2EntryAndValidates)
{
    const BenchmarkSpec spec = table2Suite().front();
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();

    CompilerOptions options;
    options.routing = RoutingStrategy::Windowed;
    options.routing_window = 4;
    const auto result = PowerMoveCompiler(machine, options).compile(circuit);
    EXPECT_NO_THROW(validateAgainstCircuit(result.schedule, circuit));
    EXPECT_GT(result.num_stages, 0u);
}

TEST(WindowedRouterGuardTest, WindowOfZeroIsRejected)
{
    const Machine machine(MachineConfig::forQubits(4));
    Rng rng(1);
    EXPECT_THROW(WindowedRouter(machine, RouterOptions{}, 0, rng),
                 InternalError);
}

} // namespace
} // namespace powermove
