/** @file Tests for the AOD move-compatibility predicate (Fig. 5). */

#include <gtest/gtest.h>

#include "route/conflict.hpp"

namespace powermove {
namespace {

class ConflictTest : public ::testing::Test
{
  protected:
    ConflictTest() : machine_(MachineConfig::forQubits(36)) {}

    QubitMove
    move(QubitId q, SiteCoord from, SiteCoord to) const
    {
        return QubitMove{q, machine_.siteAt(from), machine_.siteAt(to)};
    }

    Machine machine_;
};

TEST_F(ConflictTest, Fig5Panel1SameStartColumnSplitting)
{
    // x1s == x2s but x1e != x2e: a shared column may not split.
    const auto m1 = move(0, {2, 0}, {1, 3});
    const auto m2 = move(1, {2, 1}, {3, 4});
    EXPECT_TRUE(movesConflict(machine_, m1, m2));
}

TEST_F(ConflictTest, Fig5Panel2ColumnCrossing)
{
    // x1s > x2s but x1e < x2e: columns cross.
    const auto m1 = move(0, {3, 0}, {1, 2});
    const auto m2 = move(1, {1, 1}, {2, 3});
    EXPECT_TRUE(movesConflict(machine_, m1, m2));
}

TEST_F(ConflictTest, Fig5Panel3ColumnMerging)
{
    // x1s > x2s but x1e == x2e: columns may not merge.
    const auto m1 = move(0, {3, 0}, {2, 2});
    const auto m2 = move(1, {1, 1}, {2, 3});
    EXPECT_TRUE(movesConflict(machine_, m1, m2));
}

TEST_F(ConflictTest, RowCrossingConflictsOnY)
{
    const auto m1 = move(0, {0, 3}, {1, 1});
    const auto m2 = move(1, {1, 1}, {2, 2});
    EXPECT_TRUE(movesConflict(machine_, m1, m2));
}

TEST_F(ConflictTest, RowMergingConflictsOnY)
{
    const auto m1 = move(0, {0, 3}, {1, 2});
    const auto m2 = move(1, {2, 1}, {3, 2});
    EXPECT_TRUE(movesConflict(machine_, m1, m2));
}

TEST_F(ConflictTest, ParallelTranslationsAreCompatible)
{
    const auto m1 = move(0, {0, 0}, {1, 1});
    const auto m2 = move(1, {2, 0}, {3, 1});
    EXPECT_FALSE(movesConflict(machine_, m1, m2));
}

TEST_F(ConflictTest, StretchIsCompatible)
{
    // Both columns move apart: order preserved.
    const auto m1 = move(0, {1, 0}, {0, 0});
    const auto m2 = move(1, {2, 0}, {4, 0});
    EXPECT_FALSE(movesConflict(machine_, m1, m2));
}

TEST_F(ConflictTest, ContractionWithoutMergingIsCompatible)
{
    const auto m1 = move(0, {0, 0}, {1, 0});
    const auto m2 = move(1, {3, 0}, {2, 0});
    EXPECT_FALSE(movesConflict(machine_, m1, m2));
}

TEST_F(ConflictTest, SharedColumnMovingTogetherIsCompatible)
{
    const auto m1 = move(0, {2, 0}, {4, 0});
    const auto m2 = move(1, {2, 3}, {4, 3});
    EXPECT_FALSE(movesConflict(machine_, m1, m2));
}

TEST_F(ConflictTest, ConvergingToSameSiteConflicts)
{
    // Two movers to one site would merge both a row and a column.
    const auto m1 = move(0, {0, 0}, {2, 2});
    const auto m2 = move(1, {4, 4}, {2, 2});
    EXPECT_TRUE(movesConflict(machine_, m1, m2));
}

TEST_F(ConflictTest, PredicateIsSymmetric)
{
    const auto m1 = move(0, {3, 0}, {1, 2});
    const auto m2 = move(1, {1, 1}, {2, 3});
    EXPECT_EQ(movesConflict(machine_, m1, m2),
              movesConflict(machine_, m2, m1));
    const auto m3 = move(2, {0, 0}, {1, 1});
    const auto m4 = move(3, {2, 0}, {3, 1});
    EXPECT_EQ(movesConflict(machine_, m3, m4),
              movesConflict(machine_, m4, m3));
}

TEST_F(ConflictTest, GroupHelpers)
{
    CollMove group;
    group.moves = {move(0, {0, 0}, {1, 1}), move(1, {2, 0}, {3, 1})};
    EXPECT_TRUE(isValidCollMove(machine_, group));
    // A crossing candidate conflicts with the group.
    const auto crossing = move(2, {4, 0}, {0, 1});
    EXPECT_TRUE(conflictsWithGroup(machine_, group, crossing));
    const auto parallel = move(2, {4, 0}, {5, 1});
    EXPECT_FALSE(conflictsWithGroup(machine_, group, parallel));

    group.moves.push_back(crossing);
    EXPECT_FALSE(isValidCollMove(machine_, group));
}

TEST_F(ConflictTest, EmptyGroupIsValid)
{
    EXPECT_TRUE(isValidCollMove(machine_, CollMove{}));
}

} // namespace
} // namespace powermove
