/** @file Tests for the batch compilation service. */

#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "compiler/powermove.hpp"
#include "isa/json.hpp"
#include "isa/validator.hpp"
#include "service/fingerprint.hpp"
#include "service/service.hpp"
#include "workloads/suite.hpp"

namespace powermove::service {
namespace {

/** A small distinct job: a 4-qubit chain with @p variant CZ blocks. */
CompileJob
smallJob(std::size_t variant = 1)
{
    Circuit circuit(4);
    for (std::size_t i = 0; i < variant; ++i) {
        circuit.append(CzGate{0, 1});
        circuit.append(CzGate{2, 3});
        circuit.barrier();
        circuit.append(CzGate{1, 2});
        circuit.barrier();
    }
    return CompileJob{std::move(circuit), MachineConfig::forQubits(4), {}};
}

/** Asserts two results carry bit-identical metrics (compile time aside). */
void
expectIdenticalMetrics(const CompileResult &a, const CompileResult &b)
{
    EXPECT_EQ(a.num_stages, b.num_stages);
    EXPECT_EQ(a.num_coll_moves, b.num_coll_moves);
    EXPECT_EQ(a.schedule.instructions().size(),
              b.schedule.instructions().size());
    EXPECT_EQ(a.schedule.numTransfers(), b.schedule.numTransfers());
    EXPECT_EQ(a.metrics.excitation_exposures, b.metrics.excitation_exposures);
    EXPECT_EQ(a.metrics.pulses, b.metrics.pulses);
    EXPECT_DOUBLE_EQ(a.metrics.fidelity(), b.metrics.fidelity());
    EXPECT_DOUBLE_EQ(a.metrics.exec_time.micros(), b.metrics.exec_time.micros());
    EXPECT_DOUBLE_EQ(a.metrics.total_idle.micros(), b.metrics.total_idle.micros());

    // Pass profiles: wall times are measurement noise, but invocation
    // counts and every counter must be deterministic.
    ASSERT_EQ(a.pass_profiles.size(), b.pass_profiles.size());
    for (std::size_t i = 0; i < a.pass_profiles.size(); ++i) {
        EXPECT_EQ(a.pass_profiles[i].pass, b.pass_profiles[i].pass);
        EXPECT_EQ(a.pass_profiles[i].invocations,
                  b.pass_profiles[i].invocations);
        ASSERT_EQ(a.pass_profiles[i].counters.size(),
                  b.pass_profiles[i].counters.size());
        for (std::size_t c = 0; c < a.pass_profiles[i].counters.size(); ++c) {
            EXPECT_EQ(a.pass_profiles[i].counters[c].name,
                      b.pass_profiles[i].counters[c].name);
            EXPECT_EQ(a.pass_profiles[i].counters[c].value,
                      b.pass_profiles[i].counters[c].value);
        }
    }
}

/** ServiceOptions with just the pool size and cache capacity set. */
ServiceOptions
poolOptions(std::size_t workers, std::size_t cache_capacity)
{
    ServiceOptions options;
    options.num_workers = workers;
    options.cache_capacity = cache_capacity;
    return options;
}

TEST(ServiceTest, SubmitMatchesDirectCompileWithEffectiveOptions)
{
    CompilationService svc(poolOptions(2, 16));
    const CompileJob job = smallJob();
    const JobResult out = svc.submit(job).get();
    ASSERT_TRUE(out.result);
    EXPECT_FALSE(out.from_cache);
    EXPECT_EQ(out.fingerprint, jobFingerprint(job));
    validateAgainstCircuit(out.result->schedule, job.circuit);

    // The documented replay rule: effectiveOptions() reproduces the
    // batched compilation bit-identically outside the service.
    const Machine machine(job.machine);
    const PowerMoveCompiler direct(machine, effectiveOptions(job));
    expectIdenticalMetrics(*out.result, direct.compile(job.circuit));
}

TEST(ServiceTest, SecondSubmissionIsServedFromCache)
{
    CompilationService svc(poolOptions(2, 16));
    const CompileJob job = smallJob();

    const JobResult first = svc.submit(job).get();
    EXPECT_FALSE(first.from_cache);

    const JobResult second = svc.submit(job).get();
    EXPECT_TRUE(second.from_cache);
    EXPECT_EQ(second.result.get(), first.result.get()); // shared, not copied
    EXPECT_EQ(second.machine.get(), first.machine.get());

    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.jobs_submitted, 2u);
    EXPECT_EQ(stats.jobs_completed, 1u);
    EXPECT_EQ(stats.memory_hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.machines_built, 1u);
}

TEST(ServiceTest, DifferentOptionsAreDifferentCacheEntries)
{
    CompilationService svc(poolOptions(2, 16));
    CompileJob job = smallJob();
    (void)svc.submit(job).get();

    CompileJob reseeded = smallJob();
    reseeded.options.seed += 1;
    const JobResult out = svc.submit(reseeded).get();
    EXPECT_FALSE(out.from_cache);

    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.memory_hits, 0u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.jobs_completed, 2u);
}

TEST(ServiceTest, LruEvictionDropsTheColdestEntry)
{
    CompilationService svc(poolOptions(1, 2)); // room for two results
    (void)svc.submit(smallJob(1)).get();
    (void)svc.submit(smallJob(2)).get();
    (void)svc.submit(smallJob(3)).get(); // evicts job 1
    EXPECT_EQ(svc.stats().cache_evictions, 1u);
    EXPECT_EQ(svc.stats().cache_entries, 2u);

    // Job 1 was evicted: resubmission misses and recompiles (and in turn
    // evicts job 2, the new least-recently-used entry).
    const JobResult again = svc.submit(smallJob(1)).get();
    EXPECT_FALSE(again.from_cache);
    EXPECT_EQ(svc.stats().cache_evictions, 2u);

    // Job 3 stayed resident.
    EXPECT_TRUE(svc.submit(smallJob(3)).get().from_cache);
}

TEST(ServiceTest, ZeroCapacityDisablesCaching)
{
    CompilationService svc(poolOptions(2, 0));
    (void)svc.submit(smallJob()).get();
    const JobResult second = svc.submit(smallJob()).get();
    EXPECT_FALSE(second.from_cache);
    EXPECT_EQ(svc.stats().jobs_completed, 2u);
    EXPECT_EQ(svc.stats().cache_entries, 0u);
}

TEST(ServiceTest, ConfigErrorPropagatesThroughTheFuture)
{
    CompilationService svc(poolOptions(2, 16));

    // 9 qubits cannot fit a 2x2 compute zone in storage-free mode.
    Circuit circuit(9);
    circuit.append(CzGate{0, 1});
    CompileJob job{circuit, MachineConfig::forQubits(4), {}};
    job.options.use_storage = false;

    EXPECT_THROW(svc.submit(job).get(), ConfigError);
    EXPECT_EQ(svc.stats().jobs_failed, 1u);

    // Failures are never cached: resubmission fails afresh.
    EXPECT_THROW(svc.submit(job).get(), ConfigError);
    EXPECT_EQ(svc.stats().jobs_failed, 2u);
}

TEST(ServiceTest, CompilerConstructionErrorAlsoPropagates)
{
    CompilationService svc(poolOptions(2, 16));
    CompileJob job = smallJob();
    job.options.num_aods = 0; // rejected by PowerMoveCompiler's ctor
    EXPECT_THROW(svc.submit(job).get(), ConfigError);
}

TEST(ServiceTest, IdenticalSubmissionsCompileExactlyOnce)
{
    CompilationService svc(poolOptions(2, 16));
    const CompileJob job = smallJob();

    std::vector<std::future<JobResult>> futures;
    for (int i = 0; i < 16; ++i)
        futures.push_back(svc.submit(job));
    for (auto &future : futures)
        EXPECT_TRUE(future.get().result != nullptr);

    // Every duplicate either coalesced onto the in-flight job or hit the
    // cache; exactly one compilation ever ran.
    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.jobs_submitted, 16u);
    EXPECT_EQ(stats.jobs_completed, 1u);
    EXPECT_EQ(stats.coalesced + stats.memory_hits, 15u);
}

TEST(ServiceTest, CompileBatchReportsPerJobOutcomes)
{
    CompilationService svc(poolOptions(2, 16));

    Circuit too_big(9);
    too_big.append(CzGate{0, 1});
    CompileJob bad{too_big, MachineConfig::forQubits(4), {}};
    bad.options.use_storage = false;

    std::vector<CompileJob> jobs;
    jobs.push_back(smallJob(1));
    jobs.push_back(bad);
    jobs.push_back(smallJob(2));

    const std::vector<BatchEntry> entries = svc.compileBatch(std::move(jobs));
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_TRUE(entries[0].ok());
    EXPECT_FALSE(entries[1].ok());
    EXPECT_NE(entries[1].error.find("too small"), std::string::npos);
    EXPECT_TRUE(entries[2].ok());
}

TEST(ServiceTest, MachinesAreInternedAcrossJobs)
{
    CompilationService svc(poolOptions(2, 16));
    const JobResult a = svc.submit(smallJob(1)).get();
    const JobResult b = svc.submit(smallJob(2)).get();
    EXPECT_EQ(a.machine.get(), b.machine.get());
    EXPECT_EQ(svc.stats().machines_built, 1u);
}

TEST(ServiceTest, MachinesExpireOnceNothingReferencesThem)
{
    CompilationService svc(poolOptions(1, 1)); // cache holds exactly one result

    // Job on config X; its JobResult (the only client ref) is dropped
    // immediately, leaving the cache entry as the machine's sole owner.
    (void)svc.submit(smallJob(1)).get();
    EXPECT_EQ(svc.stats().machines_built, 1u);

    // A cached hit must still carry a live machine. Scoped so this
    // JobResult's machine reference dies before the eviction below.
    {
        const JobResult hit = svc.submit(smallJob(1)).get();
        ASSERT_TRUE(hit.from_cache);
        ASSERT_TRUE(hit.machine);
        EXPECT_EQ(hit.machine->config().compute_cols, 2);
    }

    // Config Y evicts X's entry; with no cache entry and no client
    // holding X's machine, the weak intern expires, and compiling for X
    // again rebuilds it.
    Circuit nine(9);
    nine.append(CzGate{0, 8});
    (void)svc.submit(CompileJob{nine, MachineConfig::forQubits(9), {}}).get();
    EXPECT_EQ(svc.stats().machines_built, 2u);

    (void)svc.submit(smallJob(2)).get(); // config X once more
    EXPECT_EQ(svc.stats().machines_built, 3u);
}

TEST(ServiceTest, CachedResultOutlivesEvictionAndService)
{
    JobResult kept;
    {
        CompilationService svc(poolOptions(1, 1));
        kept = svc.submit(smallJob(1)).get();
        (void)svc.submit(smallJob(2)).get(); // evicts job 1's entry
    }
    // The schedule's machine reference must survive both the eviction
    // and the service's destruction because the JobResult co-owns it.
    ASSERT_TRUE(kept.result);
    validateAgainstCircuit(kept.result->schedule, smallJob(1).circuit);
    EXPECT_EQ(&kept.result->schedule.machine(), kept.machine.get());
}

TEST(ServiceTest, WaitIdleDrainsTheQueue)
{
    CompilationService svc(poolOptions(4, 64));
    std::vector<std::future<JobResult>> futures;
    for (std::size_t v = 1; v <= 12; ++v)
        futures.push_back(svc.submit(smallJob(v)));
    svc.waitIdle();
    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.jobs_completed + stats.jobs_failed, 12u);
    for (auto &future : futures)
        EXPECT_TRUE(future.get().result != nullptr);
}

/**
 * Acceptance: the full 23-entry Table 2 suite compiled through 8 workers
 * is bit-identical to a serial (1-worker) run of the same service.
 */
TEST(ServiceTest, FullSuiteSerialVsEightWorkersBitIdentical)
{
    std::vector<CompileJob> jobs;
    for (const BenchmarkSpec &spec : table2Suite())
        jobs.push_back(CompileJob{spec.build(), spec.machine_config, {}});
    ASSERT_EQ(jobs.size(), 23u);

    CompilationService serial(poolOptions(1, 64));
    CompilationService parallel(poolOptions(8, 64));
    const auto serial_out = serial.compileBatch(jobs);
    const auto parallel_out = parallel.compileBatch(jobs);

    ASSERT_EQ(serial_out.size(), parallel_out.size());
    for (std::size_t i = 0; i < serial_out.size(); ++i) {
        ASSERT_TRUE(serial_out[i].ok()) << serial_out[i].error;
        ASSERT_TRUE(parallel_out[i].ok()) << parallel_out[i].error;
        expectIdenticalMetrics(*serial_out[i].result.result,
                               *parallel_out[i].result.result);
    }
    EXPECT_EQ(parallel.stats().jobs_completed, 23u);
}

/**
 * Profiling is schedule-neutral through the service too: the derived
 * seed comes from the profile-normalized fingerprint, so toggling
 * profile_passes changes the cache entry (different payload) but never
 * the emitted schedule.
 */
TEST(ServiceTest, ProfileTogglingNeverChangesTheSchedule)
{
    CompilationService svc(poolOptions(2, 16));

    const CompileJob profiled = smallJob();
    CompileJob unprofiled = smallJob();
    unprofiled.options.profile_passes = false;

    const JobResult on = svc.submit(profiled).get();
    const JobResult off = svc.submit(unprofiled).get();

    // Distinct cache entries (no conflated payloads)...
    EXPECT_NE(on.fingerprint, off.fingerprint);
    EXPECT_FALSE(off.from_cache);
    EXPECT_FALSE(on.result->pass_profiles.empty());
    EXPECT_TRUE(off.result->pass_profiles.empty());

    // ...but bit-identical schedules and effective seeds.
    EXPECT_EQ(scheduleToJson(on.result->schedule),
              scheduleToJson(off.result->schedule));
    EXPECT_DOUBLE_EQ(on.result->metrics.fidelity(),
                     off.result->metrics.fidelity());
    EXPECT_EQ(effectiveOptions(profiled).seed,
              effectiveOptions(unprofiled).seed);
}

/** Pass totals aggregate over worker-compiled jobs, not cache hits. */
TEST(ServiceTest, PassTotalsAggregateAcrossJobs)
{
    CompilationService svc(poolOptions(2, 16));
    EXPECT_TRUE(svc.stats().pass_totals.empty());

    (void)svc.submit(smallJob(1)).get();
    const auto after_one = svc.stats().pass_totals;
    ASSERT_FALSE(after_one.empty());
    EXPECT_EQ(after_one.front().pass, PassId::Placement);
    EXPECT_EQ(after_one.front().invocations, 1u);

    (void)svc.submit(smallJob(1)).get(); // cache hit: totals unchanged
    ASSERT_EQ(svc.stats().pass_totals.size(), after_one.size());
    EXPECT_EQ(svc.stats().pass_totals.front().invocations, 1u);

    (void)svc.submit(smallJob(2)).get(); // fresh compile: placement again
    EXPECT_EQ(svc.stats().pass_totals.front().invocations, 2u);
}

/** Stress: the whole suite submitted concurrently from many threads. */
TEST(ServiceTest, ConcurrentSuiteStress)
{
    std::vector<CompileJob> jobs;
    for (const BenchmarkSpec &spec : table2Suite())
        jobs.push_back(CompileJob{spec.build(), spec.machine_config, {}});

    CompilationService svc(poolOptions(8, 64));
    constexpr std::size_t kSubmitters = 4;
    std::vector<std::vector<std::future<JobResult>>> futures(kSubmitters);
    {
        std::vector<std::thread> submitters;
        for (std::size_t t = 0; t < kSubmitters; ++t) {
            submitters.emplace_back([&, t] {
                for (const CompileJob &job : jobs)
                    futures[t].push_back(svc.submit(job));
            });
        }
        for (std::thread &submitter : submitters)
            submitter.join();
    }

    for (auto &lane : futures) {
        for (std::size_t i = 0; i < lane.size(); ++i) {
            const JobResult out = lane[i].get();
            ASSERT_TRUE(out.result);
            validateAgainstCircuit(out.result->schedule, jobs[i].circuit);
        }
    }

    // Each distinct job compiled exactly once no matter how submissions
    // interleaved with completions.
    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.jobs_submitted, kSubmitters * jobs.size());
    EXPECT_EQ(stats.jobs_completed, jobs.size());
    EXPECT_EQ(stats.coalesced + stats.memory_hits,
              (kSubmitters - 1) * jobs.size());
    EXPECT_EQ(stats.jobs_failed, 0u);
}

} // namespace
} // namespace powermove::service
