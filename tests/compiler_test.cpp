/** @file End-to-end tests for the PowerMove compiler. */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "compiler/powermove.hpp"
#include "isa/validator.hpp"
#include "workloads/suite.hpp"

namespace powermove {
namespace {

TEST(CompilerTest, ZeroAodsRejected)
{
    const Machine machine(MachineConfig::forQubits(4));
    EXPECT_THROW(PowerMoveCompiler(machine, {true, 0}), ConfigError);
}

TEST(CompilerTest, EmptyCircuitCompilesToEmptySchedule)
{
    const Machine machine(MachineConfig::forQubits(4));
    const PowerMoveCompiler compiler(machine);
    const auto result = compiler.compile(Circuit(4));
    EXPECT_TRUE(result.schedule.instructions().empty());
    EXPECT_DOUBLE_EQ(result.metrics.fidelity(), 1.0);
    EXPECT_EQ(result.num_stages, 0u);
}

TEST(CompilerTest, SingleGateProgram)
{
    const Machine machine(MachineConfig::forQubits(4));
    const PowerMoveCompiler compiler(machine);
    Circuit circuit(4);
    circuit.append(CzGate{0, 1});
    const auto result = compiler.compile(circuit);
    EXPECT_EQ(result.num_stages, 1u);
    EXPECT_EQ(result.schedule.numCzGates(), 1u);
    EXPECT_NO_THROW(validateAgainstCircuit(result.schedule, circuit));
}

TEST(CompilerTest, InitialLayoutFollowsStorageOption)
{
    const Machine machine(MachineConfig::forQubits(9));
    Circuit circuit(9);
    circuit.append(CzGate{0, 1});

    const auto with = PowerMoveCompiler(machine, {true, 1}).compile(circuit);
    for (const SiteId site : with.schedule.initialSites())
        EXPECT_EQ(machine.zoneOf(site), ZoneKind::Storage);

    const auto without =
        PowerMoveCompiler(machine, {false, 1}).compile(circuit);
    for (const SiteId site : without.schedule.initialSites())
        EXPECT_EQ(machine.zoneOf(site), ZoneKind::Compute);
}

TEST(CompilerTest, StorageEliminatesExcitationError)
{
    const auto spec = findBenchmark("QSIM-rand-0.3-10");
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();

    const auto with = PowerMoveCompiler(machine, {true, 1}).compile(circuit);
    EXPECT_EQ(with.metrics.excitation_exposures, 0u);
    EXPECT_DOUBLE_EQ(with.metrics.excitation_factor, 1.0);

    const auto without =
        PowerMoveCompiler(machine, {false, 1}).compile(circuit);
    EXPECT_GT(without.metrics.excitation_exposures, 0u);
    EXPECT_LT(without.metrics.excitation_factor, 1.0);
}

TEST(CompilerTest, DeterministicForFixedSeed)
{
    const auto spec = findBenchmark("QAOA-regular3-30");
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();
    const PowerMoveCompiler compiler(machine, {true, 1, 0.5, 77});

    const auto a = compiler.compile(circuit);
    const auto b = compiler.compile(circuit);
    EXPECT_DOUBLE_EQ(a.metrics.fidelity(), b.metrics.fidelity());
    EXPECT_DOUBLE_EQ(a.metrics.exec_time.micros(),
                     b.metrics.exec_time.micros());
    EXPECT_EQ(a.num_coll_moves, b.num_coll_moves);
}

TEST(CompilerTest, CompileTimeIsMeasured)
{
    const auto spec = findBenchmark("QAOA-regular3-30");
    const Machine machine(spec.machine_config);
    const auto result = PowerMoveCompiler(machine).compile(spec.build());
    EXPECT_GT(result.compile_time.micros(), 0.0);
}

TEST(CompilerTest, MachineTooSmallIsRejected)
{
    const Machine machine(MachineConfig::forQubits(4));
    Circuit circuit(9); // 9 qubits on a 2x2 compute zone
    circuit.append(CzGate{0, 1});
    EXPECT_THROW(PowerMoveCompiler(machine, {false, 1}).compile(circuit),
                 ConfigError);
}

/** Full-suite property: every benchmark compiles to a valid schedule. */
class CompilerSuiteProperty
    : public ::testing::TestWithParam<std::tuple<std::string, bool>>
{};

TEST_P(CompilerSuiteProperty, SchedulesAreValidAndComplete)
{
    const auto &[name, use_storage] = GetParam();
    const auto spec = findBenchmark(name);
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();

    const PowerMoveCompiler compiler(machine, {use_storage, 1});
    const auto result = compiler.compile(circuit);

    EXPECT_NO_THROW(validateAgainstCircuit(result.schedule, circuit));
    EXPECT_GT(result.metrics.fidelity(), 0.0);
    EXPECT_LE(result.metrics.fidelity(), 1.0);
    EXPECT_GT(result.metrics.exec_time.micros(), 0.0);
    EXPECT_EQ(result.schedule.numCzGates(), circuit.numCzGates());
    if (use_storage) {
        EXPECT_EQ(result.metrics.excitation_exposures, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Benchmarks, CompilerSuiteProperty,
    ::testing::Combine(::testing::Values("QAOA-regular3-30",
                                         "QAOA-regular4-30", "QAOA-random-20",
                                         "QFT-18", "BV-14", "BV-50", "VQE-30",
                                         "QSIM-rand-0.3-10",
                                         "QSIM-rand-0.3-20"),
                       ::testing::Bool()));

/** Multi-AOD property: more AODs never increase execution time. */
class CompilerAodProperty : public ::testing::TestWithParam<std::string>
{};

TEST_P(CompilerAodProperty, ExecutionTimeMonotoneInAods)
{
    const auto spec = findBenchmark(GetParam());
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();

    double previous = 1e300;
    for (const std::size_t aods : {1u, 2u, 3u, 4u}) {
        const PowerMoveCompiler compiler(machine, {true, aods});
        const auto result = compiler.compile(circuit);
        EXPECT_NO_THROW(validateAgainstCircuit(result.schedule, circuit));
        EXPECT_LE(result.metrics.exec_time.micros(), previous + 1e-6);
        previous = result.metrics.exec_time.micros();
    }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, CompilerAodProperty,
                         ::testing::Values("QAOA-regular3-30", "VQE-30",
                                           "QSIM-rand-0.3-10"));

} // namespace
} // namespace powermove
