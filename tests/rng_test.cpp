/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace powermove {
namespace {

TEST(RngTest, SameSeedSameSequence)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int differing = 0;
    for (int i = 0; i < 32; ++i) {
        if (a.next() != b.next())
            ++differing;
    }
    EXPECT_GT(differing, 30);
}

TEST(RngTest, NextBelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(13), 13u);
}

TEST(RngTest, NextBelowOneIsAlwaysZero)
{
    Rng rng(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(RngTest, NextBelowZeroThrows)
{
    Rng rng(7);
    EXPECT_THROW(rng.nextBelow(0), InternalError);
}

TEST(RngTest, NextBelowCoversAllResidues)
{
    Rng rng(11);
    std::vector<int> seen(5, 0);
    for (int i = 0; i < 500; ++i)
        ++seen[rng.nextBelow(5)];
    for (const int count : seen)
        EXPECT_GT(count, 0);
}

TEST(RngTest, NextInRangeInclusive)
{
    Rng rng(3);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextInRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(RngTest, NextBoolMatchesProbabilityRoughly)
{
    Rng rng(9);
    int hits = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; ++i)
        hits += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.03);
}

TEST(RngTest, NextBoolExtremes)
{
    Rng rng(2);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(RngTest, ShuffleIsPermutation)
{
    Rng rng(13);
    std::vector<int> values(50);
    std::iota(values.begin(), values.end(), 0);
    auto shuffled = values;
    rng.shuffle(shuffled);
    EXPECT_FALSE(std::is_sorted(shuffled.begin(), shuffled.end()));
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ShuffleEmptyAndSingleton)
{
    Rng rng(1);
    std::vector<int> empty;
    rng.shuffle(empty);
    EXPECT_TRUE(empty.empty());
    std::vector<int> one{42};
    rng.shuffle(one);
    EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, SampleIndicesDistinctSortedInRange)
{
    Rng rng(17);
    for (int trial = 0; trial < 50; ++trial) {
        const auto sample = rng.sampleIndices(20, 7);
        ASSERT_EQ(sample.size(), 7u);
        EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
        EXPECT_TRUE(std::adjacent_find(sample.begin(), sample.end()) ==
                    sample.end());
        for (const auto index : sample)
            EXPECT_LT(index, 20u);
    }
}

TEST(RngTest, SampleIndicesFullRange)
{
    Rng rng(23);
    const auto sample = rng.sampleIndices(5, 5);
    EXPECT_EQ(sample, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, SampleIndicesZero)
{
    Rng rng(23);
    EXPECT_TRUE(rng.sampleIndices(5, 0).empty());
}

TEST(RngTest, SampleIndicesTooManyThrows)
{
    Rng rng(23);
    EXPECT_THROW(rng.sampleIndices(3, 4), InternalError);
}

TEST(SplitMix64Test, KnownSequenceAdvancesState)
{
    std::uint64_t state = 0;
    const auto first = splitMix64(state);
    const auto second = splitMix64(state);
    EXPECT_NE(first, second);
    EXPECT_NE(state, 0u);
}

} // namespace
} // namespace powermove
