/** @file Unit tests for the circuit IR. */

#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "circuit/stats.hpp"
#include "common/error.hpp"

namespace powermove {
namespace {

TEST(GateTest, CanonicalOrdersEndpoints)
{
    EXPECT_EQ((CzGate{3, 1}.canonical()), (CzGate{1, 3}));
    EXPECT_EQ((CzGate{1, 3}.canonical()), (CzGate{1, 3}));
}

TEST(GateTest, TouchesAndPartner)
{
    const CzGate gate{2, 5};
    EXPECT_TRUE(gate.touches(2));
    EXPECT_TRUE(gate.touches(5));
    EXPECT_FALSE(gate.touches(3));
    EXPECT_EQ(gate.partnerOf(2), 5u);
    EXPECT_EQ(gate.partnerOf(5), 2u);
}

TEST(GateTest, OneQKindNamesAndAngles)
{
    EXPECT_EQ(oneQKindName(OneQKind::H), "h");
    EXPECT_EQ(oneQKindName(OneQKind::Sdg), "sdg");
    EXPECT_EQ(oneQKindName(OneQKind::Rz), "rz");
    EXPECT_TRUE(oneQKindHasAngle(OneQKind::Rx));
    EXPECT_TRUE(oneQKindHasAngle(OneQKind::U));
    EXPECT_FALSE(oneQKindHasAngle(OneQKind::H));
    EXPECT_FALSE(oneQKindHasAngle(OneQKind::T));
}

TEST(CircuitTest, EmptyCircuit)
{
    const Circuit c(4, "empty");
    EXPECT_TRUE(c.empty());
    EXPECT_EQ(c.numQubits(), 4u);
    EXPECT_EQ(c.name(), "empty");
    EXPECT_EQ(c.numBlocks(), 0u);
}

TEST(CircuitTest, AlternationMergesConsecutiveKinds)
{
    Circuit c(4);
    c.append(OneQGate{OneQKind::H, 0, 0.0});
    c.append(OneQGate{OneQKind::H, 1, 0.0});
    c.append(CzGate{0, 1});
    c.append(CzGate{2, 3});
    c.append(OneQGate{OneQKind::X, 2, 0.0});
    c.append(CzGate{1, 2});

    ASSERT_EQ(c.moments().size(), 4u);
    EXPECT_TRUE(std::holds_alternative<OneQLayer>(c.moments()[0]));
    EXPECT_TRUE(std::holds_alternative<CzBlock>(c.moments()[1]));
    EXPECT_TRUE(std::holds_alternative<OneQLayer>(c.moments()[2]));
    EXPECT_TRUE(std::holds_alternative<CzBlock>(c.moments()[3]));
    EXPECT_EQ(c.numBlocks(), 2u);
    EXPECT_EQ(c.numCzGates(), 3u);
    EXPECT_EQ(c.numOneQGates(), 3u);
}

TEST(CircuitTest, CzGatesStoredCanonically)
{
    Circuit c(3);
    c.append(CzGate{2, 0});
    const auto blocks = c.blocks();
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0]->gates[0], (CzGate{0, 2}));
}

TEST(CircuitTest, BarrierSplitsBlocks)
{
    Circuit c(4);
    c.append(CzGate{0, 1});
    c.barrier();
    c.append(CzGate{2, 3});
    EXPECT_EQ(c.numBlocks(), 2u);
}

TEST(CircuitTest, BarrierBeforeOneQIsHarmless)
{
    Circuit c(2);
    c.barrier();
    c.append(OneQGate{OneQKind::H, 0, 0.0});
    c.append(CzGate{0, 1});
    EXPECT_EQ(c.numBlocks(), 1u);
}

TEST(CircuitTest, RejectsOutOfRangeQubits)
{
    Circuit c(2);
    EXPECT_THROW(c.append(OneQGate{OneQKind::H, 2, 0.0}), ConfigError);
    EXPECT_THROW(c.append(CzGate{0, 5}), ConfigError);
}

TEST(CircuitTest, RejectsSelfCz)
{
    Circuit c(2);
    EXPECT_THROW(c.append(CzGate{1, 1}), ConfigError);
}

TEST(CircuitTest, AppendCircuitConcatenates)
{
    Circuit a(3);
    a.append(CzGate{0, 1});
    Circuit b(3);
    b.append(OneQGate{OneQKind::H, 2, 0.0});
    b.append(CzGate{1, 2});
    a.appendCircuit(b);
    EXPECT_EQ(a.numCzGates(), 2u);
    EXPECT_EQ(a.numOneQGates(), 1u);
    EXPECT_EQ(a.numBlocks(), 2u);
}

TEST(CircuitTest, AppendCircuitRequiresSameWidth)
{
    Circuit a(3);
    const Circuit b(4);
    EXPECT_THROW(a.appendCircuit(b), ConfigError);
}

TEST(OneQLayerTest, DepthCountsStackedGates)
{
    OneQLayer layer;
    layer.gates = {OneQGate{OneQKind::H, 0, 0.0},
                   OneQGate{OneQKind::X, 0, 0.0},
                   OneQGate{OneQKind::H, 1, 0.0}};
    EXPECT_EQ(layer.depth(2), 2u);
    EXPECT_EQ(OneQLayer{}.depth(2), 0u);
}

TEST(CzBlockTest, TouchedQubitsSortedUnique)
{
    CzBlock block;
    block.gates = {CzGate{3, 1}, CzGate{1, 2}};
    EXPECT_EQ(block.touchedQubits(), (std::vector<QubitId>{1, 2, 3}));
}

TEST(CircuitStatsTest, CountsAndBounds)
{
    Circuit c(4);
    c.append(OneQGate{OneQKind::H, 0, 0.0});
    // Block 1: star around qubit 0 -> needs 3 stages.
    c.append(CzGate{0, 1});
    c.append(CzGate{0, 2});
    c.append(CzGate{0, 3});
    c.append(OneQGate{OneQKind::H, 0, 0.0});
    // Block 2: disjoint pair -> 1 stage.
    c.append(CzGate{1, 2});

    const auto stats = computeStats(c);
    EXPECT_EQ(stats.num_qubits, 4u);
    EXPECT_EQ(stats.num_cz_gates, 4u);
    EXPECT_EQ(stats.num_one_q_gates, 2u);
    EXPECT_EQ(stats.num_blocks, 2u);
    EXPECT_EQ(stats.max_block_gates, 3u);
    EXPECT_EQ(stats.stage_lower_bound, 4u);
    EXPECT_NE(stats.toString().find("cz=4"), std::string::npos);
}

TEST(CircuitStatsTest, EmptyCircuitStats)
{
    const auto stats = computeStats(Circuit(2));
    EXPECT_EQ(stats.num_cz_gates, 0u);
    EXPECT_EQ(stats.stage_lower_bound, 0u);
}

} // namespace
} // namespace powermove
