/** @file Tests for the MIS machinery of the Enola baseline. */

#include <gtest/gtest.h>

#include <algorithm>

#include "enola/mis.hpp"
#include "route/conflict.hpp"

namespace powermove {
namespace {

TEST(MisPartitionTest, EmptyInput)
{
    EXPECT_TRUE(misPartition(0, [](std::size_t, std::size_t) {
                    return false;
                }).empty());
}

TEST(MisPartitionTest, NoConflictsYieldOneGroup)
{
    const auto groups =
        misPartition(5, [](std::size_t, std::size_t) { return false; });
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].size(), 5u);
}

TEST(MisPartitionTest, CliqueYieldsSingletons)
{
    const auto groups =
        misPartition(4, [](std::size_t, std::size_t) { return true; });
    EXPECT_EQ(groups.size(), 4u);
}

TEST(MisPartitionTest, CoversEveryIndexExactlyOnce)
{
    const auto conflict = [](std::size_t a, std::size_t b) {
        return (a + b) % 3 == 0;
    };
    const auto groups = misPartition(12, conflict);
    std::vector<std::size_t> seen;
    for (const auto &group : groups) {
        for (const std::size_t index : group) {
            seen.push_back(index);
            for (const std::size_t other : group) {
                if (index != other) {
                    EXPECT_FALSE(conflict(index, other));
                }
            }
        }
    }
    std::sort(seen.begin(), seen.end());
    ASSERT_EQ(seen.size(), 12u);
    for (std::size_t i = 0; i < 12; ++i)
        EXPECT_EQ(seen[i], i);
}

TEST(MisPartitionTest, FirstGroupIsMaximal)
{
    // Path conflict graph 0-1-2-3-4: the greedy MIS picks {0,2,4}.
    const auto conflict = [](std::size_t a, std::size_t b) {
        return (a > b ? a - b : b - a) == 1;
    };
    const auto groups = misPartition(5, conflict);
    ASSERT_GE(groups.size(), 2u);
    EXPECT_EQ(groups[0].size(), 3u);
}

TEST(PartitionStagesByMisTest, EmptyBlock)
{
    EXPECT_TRUE(partitionStagesByMis(CzBlock{}, 4).empty());
}

TEST(PartitionStagesByMisTest, StagesDisjointAndComplete)
{
    CzBlock block;
    block.gates = {CzGate{0, 1}, CzGate{1, 2}, CzGate{2, 3}, CzGate{3, 4},
                   CzGate{0, 4}};
    const auto stages = partitionStagesByMis(block, 5);
    std::size_t total = 0;
    for (const auto &stage : stages) {
        EXPECT_TRUE(stage.qubitsDisjoint());
        total += stage.gates.size();
    }
    EXPECT_EQ(total, block.gates.size());
    // A 5-cycle needs 3 matchings.
    EXPECT_EQ(stages.size(), 3u);
}

TEST(PartitionStagesByMisTest, DisjointGatesShareOneStage)
{
    CzBlock block;
    block.gates = {CzGate{0, 1}, CzGate{2, 3}, CzGate{4, 5}};
    const auto stages = partitionStagesByMis(block, 6);
    ASSERT_EQ(stages.size(), 1u);
    EXPECT_EQ(stages[0].gates.size(), 3u);
}

TEST(GroupMovesByMisTest, GroupsAreConflictFreeAndComplete)
{
    const Machine machine(MachineConfig::forQubits(16));
    std::vector<QubitMove> moves = {
        {0, 0, 5},  {1, 1, 4},  {2, 2, 7},
        {3, 3, 6},  {4, 8, 13}, {5, 9, 12},
    };
    const auto groups = groupMovesByMis(machine, moves);
    std::size_t total = 0;
    for (const auto &group : groups) {
        EXPECT_TRUE(isValidCollMove(machine, group));
        total += group.moves.size();
    }
    EXPECT_EQ(total, moves.size());
}

TEST(GroupMovesByMisTest, EmptyMoves)
{
    const Machine machine(MachineConfig::forQubits(4));
    EXPECT_TRUE(groupMovesByMis(machine, {}).empty());
}

} // namespace
} // namespace powermove
