/** @file Tests for the Enola baseline compiler. */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "compiler/powermove.hpp"
#include "enola/enola.hpp"
#include "isa/validator.hpp"
#include "workloads/suite.hpp"

namespace powermove {
namespace {

TEST(EnolaTest, ZeroAodsRejected)
{
    const Machine machine(MachineConfig::forQubits(4));
    EnolaOptions options;
    options.num_aods = 0;
    EXPECT_THROW(EnolaCompiler(machine, options), ConfigError);
}

TEST(EnolaTest, HomeLayoutIsRowMajorByDefault)
{
    const Machine machine(MachineConfig::forQubits(9));
    Circuit circuit(9);
    circuit.append(CzGate{0, 1});
    const auto result = EnolaCompiler(machine).compile(circuit);
    for (QubitId q = 0; q < 9; ++q)
        EXPECT_EQ(result.schedule.initialSites()[q], q);
}

TEST(EnolaTest, RevertsToHomeAfterEveryStage)
{
    const Machine machine(MachineConfig::forQubits(9));
    Circuit circuit(9);
    circuit.append(CzGate{0, 5});
    circuit.append(CzGate{3, 7});
    const auto result = EnolaCompiler(machine).compile(circuit);

    // Replay: after the full program every qubit is back home.
    std::vector<SiteId> positions = result.schedule.initialSites();
    for (const auto &instruction : result.schedule.instructions()) {
        if (const auto *op = std::get_if<MoveBatchOp>(&instruction)) {
            for (const auto &group : op->batch.groups)
                for (const auto &move : group.moves)
                    positions[move.qubit] = move.to;
        }
    }
    for (QubitId q = 0; q < 9; ++q)
        EXPECT_EQ(positions[q], q);
}

TEST(EnolaTest, TwoLegsMeansTwoMovesPerGate)
{
    const Machine machine(MachineConfig::forQubits(9));
    Circuit circuit(9);
    circuit.append(CzGate{0, 5});
    circuit.append(CzGate{3, 7});
    const auto result = EnolaCompiler(machine).compile(circuit);
    // One mover per gate, out and back.
    EXPECT_EQ(result.schedule.numQubitMoves(), 2u * circuit.numCzGates());
}

TEST(EnolaTest, NeverUsesStorage)
{
    const auto spec = findBenchmark("QSIM-rand-0.3-10");
    const Machine machine(spec.machine_config);
    const auto result = EnolaCompiler(machine).compile(spec.build());
    for (const auto &instruction : result.schedule.instructions()) {
        if (const auto *op = std::get_if<MoveBatchOp>(&instruction)) {
            for (const auto &group : op->batch.groups) {
                for (const auto &move : group.moves) {
                    EXPECT_EQ(machine.zoneOf(move.to), ZoneKind::Compute);
                    EXPECT_EQ(machine.zoneOf(move.from), ZoneKind::Compute);
                }
            }
        }
    }
}

TEST(EnolaTest, SequentialMovementUsesSingletonCollMoves)
{
    const auto spec = findBenchmark("QAOA-regular3-30");
    const Machine machine(spec.machine_config);
    const auto result = EnolaCompiler(machine).compile(spec.build());
    for (const auto &instruction : result.schedule.instructions()) {
        if (const auto *op = std::get_if<MoveBatchOp>(&instruction)) {
            for (const auto &group : op->batch.groups)
                EXPECT_EQ(group.moves.size(), 1u);
        }
    }
}

TEST(EnolaTest, MisBatchingReducesExecutionTime)
{
    const auto spec = findBenchmark("QAOA-regular3-30");
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();

    EnolaOptions sequential;
    EnolaOptions batched;
    batched.movement = EnolaMovement::Mis;
    const auto slow = EnolaCompiler(machine, sequential).compile(circuit);
    const auto fast = EnolaCompiler(machine, batched).compile(circuit);

    EXPECT_NO_THROW(validateAgainstCircuit(fast.schedule, circuit));
    EXPECT_LT(fast.metrics.exec_time.micros(),
              slow.metrics.exec_time.micros());
    // Same gate work either way.
    EXPECT_EQ(fast.schedule.numCzGates(), slow.schedule.numCzGates());
    EXPECT_EQ(fast.schedule.numQubitMoves(), slow.schedule.numQubitMoves());
}

TEST(EnolaTest, AnnealedPlacementShortensMoves)
{
    const auto spec = findBenchmark("QAOA-regular3-30");
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();

    EnolaOptions annealed;
    annealed.anneal_placement = true;
    const auto base = EnolaCompiler(machine).compile(circuit);
    const auto tuned = EnolaCompiler(machine, annealed).compile(circuit);
    EXPECT_NO_THROW(validateAgainstCircuit(tuned.schedule, circuit));
    EXPECT_LT(tuned.metrics.exec_time.micros(),
              base.metrics.exec_time.micros());
}

TEST(EnolaStorageTest, HomeLayoutSitsInStorage)
{
    const Machine machine(MachineConfig::forQubits(9));
    Circuit circuit(9);
    circuit.append(CzGate{0, 1});
    EnolaOptions options;
    options.use_storage = true;
    const auto result = EnolaCompiler(machine, options).compile(circuit);
    for (const SiteId site : result.schedule.initialSites())
        EXPECT_EQ(machine.zoneOf(site), ZoneKind::Storage);
    EXPECT_NO_THROW(validateAgainstCircuit(result.schedule, circuit));
}

TEST(EnolaStorageTest, BothEndpointsShuttlePerStage)
{
    const Machine machine(MachineConfig::forQubits(9));
    Circuit circuit(9);
    circuit.append(CzGate{0, 1});
    circuit.append(CzGate{2, 3});
    EnolaOptions options;
    options.use_storage = true;
    const auto result = EnolaCompiler(machine, options).compile(circuit);
    // Fig. 3f: two qubits out and back per gate.
    EXPECT_EQ(result.schedule.numQubitMoves(), 4u * circuit.numCzGates());
}

TEST(EnolaStorageTest, EliminatesExcitationButPaysInterZoneTime)
{
    const auto spec = findBenchmark("QSIM-rand-0.3-10");
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();

    EnolaOptions with;
    with.use_storage = true;
    const auto storage = EnolaCompiler(machine, with).compile(circuit);
    const auto plain = EnolaCompiler(machine).compile(circuit);

    EXPECT_NO_THROW(validateAgainstCircuit(storage.schedule, circuit));
    EXPECT_EQ(storage.metrics.excitation_exposures, 0u);
    EXPECT_GT(plain.metrics.excitation_exposures, 0u);
    // The shuttling overhead the paper's Example 2 predicts.
    EXPECT_GT(storage.metrics.exec_time.micros(),
              plain.metrics.exec_time.micros());
    EXPECT_GT(storage.schedule.numTransfers(),
              plain.schedule.numTransfers());
}

TEST(EnolaStorageTest, PowerMoveStillWinsWithStorage)
{
    // The point of the paper's Example 2: even granting Enola a storage
    // zone, the revert scheme loses to the continuous router.
    const auto spec = findBenchmark("QSIM-rand-0.3-10");
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();

    EnolaOptions with;
    with.use_storage = true;
    const auto enola_ws = EnolaCompiler(machine, with).compile(circuit);
    const auto pm_ws = PowerMoveCompiler(machine, {true, 1}).compile(circuit);
    EXPECT_GT(pm_ws.metrics.fidelity(), enola_ws.metrics.fidelity());
    EXPECT_LT(pm_ws.metrics.exec_time.micros(),
              enola_ws.metrics.exec_time.micros());
}

/** Suite sweep: Enola schedules are valid and complete. */
class EnolaSuiteProperty : public ::testing::TestWithParam<std::string>
{};

TEST_P(EnolaSuiteProperty, SchedulesAreValidAndComplete)
{
    const auto spec = findBenchmark(GetParam());
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();
    const auto result = EnolaCompiler(machine).compile(circuit);

    EXPECT_NO_THROW(validateAgainstCircuit(result.schedule, circuit));
    EXPECT_GT(result.metrics.fidelity(), 0.0);
    EXPECT_EQ(result.schedule.numCzGates(), circuit.numCzGates());
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, EnolaSuiteProperty,
                         ::testing::Values("QAOA-regular3-30",
                                           "QAOA-random-20", "QFT-18", "BV-14",
                                           "VQE-30", "QSIM-rand-0.3-10"));

/** The headline comparison: PowerMove beats the baseline. */
class HeadlineProperty : public ::testing::TestWithParam<std::string>
{};

TEST_P(HeadlineProperty, PowerMoveBeatsEnolaOnFidelityAndTime)
{
    const auto spec = findBenchmark(GetParam());
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();

    const auto enola = EnolaCompiler(machine).compile(circuit);
    const auto ns = PowerMoveCompiler(machine, {false, 1}).compile(circuit);
    const auto ws = PowerMoveCompiler(machine, {true, 1}).compile(circuit);

    // Table 3 orderings: non-storage is faster than Enola, and the
    // zoned flow has the highest fidelity of the three.
    EXPECT_LT(ns.metrics.exec_time.micros(), enola.metrics.exec_time.micros());
    EXPECT_GT(ns.metrics.fidelity(), enola.metrics.fidelity());
    EXPECT_GT(ws.metrics.fidelity(), enola.metrics.fidelity());
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, HeadlineProperty,
                         ::testing::Values("QAOA-regular3-30",
                                           "QAOA-regular4-30", "QFT-18",
                                           "BV-14", "BV-50", "VQE-30",
                                           "QSIM-rand-0.3-10",
                                           "QSIM-rand-0.3-20"));

} // namespace
} // namespace powermove
