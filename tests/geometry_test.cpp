/** @file Unit tests for grid and physical geometry. */

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/geometry.hpp"

namespace powermove {
namespace {

TEST(SiteCoordTest, EqualityAndOrdering)
{
    EXPECT_EQ((SiteCoord{1, 2}), (SiteCoord{1, 2}));
    EXPECT_NE((SiteCoord{1, 2}), (SiteCoord{2, 1}));
    EXPECT_LT((SiteCoord{1, 2}), (SiteCoord{1, 3}));
    EXPECT_LT((SiteCoord{1, 2}), (SiteCoord{2, 0}));
}

TEST(SiteCoordTest, HashDistinguishesCoordinates)
{
    std::unordered_set<SiteCoord> set;
    for (std::int32_t x = -3; x <= 3; ++x) {
        for (std::int32_t y = -3; y <= 3; ++y)
            set.insert(SiteCoord{x, y});
    }
    EXPECT_EQ(set.size(), 49u);
}

TEST(GeometryTest, EuclideanAxisAligned)
{
    EXPECT_DOUBLE_EQ(
        euclidean(PhysCoord{0, 0}, PhysCoord{0, 30}).microns(), 30.0);
    EXPECT_DOUBLE_EQ(
        euclidean(PhysCoord{15, 0}, PhysCoord{0, 0}).microns(), 15.0);
}

TEST(GeometryTest, EuclideanDiagonal)
{
    EXPECT_DOUBLE_EQ(
        euclidean(PhysCoord{0, 0}, PhysCoord{3, 4}).microns(), 5.0);
}

TEST(GeometryTest, EuclideanSelfIsZero)
{
    EXPECT_DOUBLE_EQ(
        euclidean(PhysCoord{7, 9}, PhysCoord{7, 9}).microns(), 0.0);
}

TEST(GeometryTest, ManhattanDistance)
{
    EXPECT_EQ(manhattan(SiteCoord{0, 0}, SiteCoord{2, 3}), 5);
    EXPECT_EQ(manhattan(SiteCoord{-1, -1}, SiteCoord{1, 1}), 4);
    EXPECT_EQ(manhattan(SiteCoord{5, 5}, SiteCoord{5, 5}), 0);
}

TEST(GeometryTest, ChebyshevDistance)
{
    EXPECT_EQ(chebyshev(SiteCoord{0, 0}, SiteCoord{2, 3}), 3);
    EXPECT_EQ(chebyshev(SiteCoord{4, 0}, SiteCoord{0, 1}), 4);
}

TEST(GeometryTest, StreamOutput)
{
    std::ostringstream os;
    os << SiteCoord{2, 5};
    EXPECT_EQ(os.str(), "(2,5)");
}

} // namespace
} // namespace powermove
