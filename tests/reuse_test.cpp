/** @file Tests for the reuse-aware routing subsystem (src/reuse/). */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "compiler/powermove.hpp"
#include "isa/json.hpp"
#include "isa/validator.hpp"
#include "reuse/analysis.hpp"
#include "reuse/occupancy.hpp"
#include "reuse/router.hpp"
#include "workloads/suite.hpp"
#include "workloads/vqe.hpp"

namespace powermove {
namespace {

Stage
stageOf(std::initializer_list<CzGate> gates)
{
    Stage stage;
    stage.gates = gates;
    return stage;
}

// ---------------------------------------------------------- ZoneOccupancy

TEST(ZoneOccupancyTest, BeginTransitionMirrorsTheLayout)
{
    const Machine machine(MachineConfig::forQubits(4));
    Layout layout(machine, 4);
    placeRowMajor(layout, ZoneKind::Storage);

    ZoneOccupancy occupancy(machine);
    occupancy.beginTransition(layout);
    EXPECT_EQ(occupancy.totalPlanned(), 4u);
    for (QubitId q = 0; q < 4; ++q)
        EXPECT_EQ(occupancy.plannedAt(layout.siteOf(q)), 1);
    EXPECT_EQ(occupancy.plannedAt(machine.computeSites().front()), 0);
}

TEST(ZoneOccupancyTest, DepartArrivePairsConserveTheTotal)
{
    const Machine machine(MachineConfig::forQubits(9));
    Layout layout(machine, 5);
    placeRowMajor(layout, ZoneKind::Storage);

    ZoneOccupancy occupancy(machine);
    occupancy.beginTransition(layout);
    const auto compute = machine.computeSites();
    for (QubitId q = 0; q < 5; ++q) {
        occupancy.depart(layout.siteOf(q));
        occupancy.arrive(compute[q]);
    }
    EXPECT_EQ(occupancy.totalPlanned(), 5u);
    for (QubitId q = 0; q < 5; ++q) {
        EXPECT_EQ(occupancy.plannedAt(layout.siteOf(q)), 0);
        EXPECT_EQ(occupancy.plannedAt(compute[q]), 1);
    }
}

TEST(ZoneOccupancyTest, ResidencyLifetimesAreCounted)
{
    const Machine machine(MachineConfig::forQubits(4));
    ZoneOccupancy occupancy(machine);
    occupancy.resetResidency(3);

    occupancy.holdResident(0, 1);
    occupancy.holdResident(1, 2);
    EXPECT_TRUE(occupancy.isResident(0));
    EXPECT_EQ(occupancy.numResidents(), 2u);
    occupancy.holdResident(0, 3); // no-op: span continues
    EXPECT_EQ(occupancy.stats().holds_started, 2u);

    occupancy.releaseResident(0, 4); // span length 3
    occupancy.releaseResident(2, 4); // not resident: no-op
    EXPECT_FALSE(occupancy.isResident(0));
    EXPECT_EQ(occupancy.numResidents(), 1u);
    EXPECT_EQ(occupancy.stats().holds_ended, 1u);
    EXPECT_EQ(occupancy.stats().resident_stages, 3u);
    EXPECT_EQ(occupancy.stats().max_concurrent, 2u);

    // A block boundary ends the surviving span (qubit 1, resident
    // since stage 2) at one past the block's last stage.
    occupancy.resetResidency(3, /*end_stage=*/5);
    EXPECT_EQ(occupancy.numResidents(), 0u);
    EXPECT_EQ(occupancy.stats().holds_ended, 2u);
    EXPECT_EQ(occupancy.stats().resident_stages, 6u); // 3 + (5 - 2)
}

// ---------------------------------------------------------- ReuseAnalysis

TEST(ReuseAnalysisTest, NextUseScansTheOrderedStages)
{
    ReuseAnalysis analysis;
    analysis.beginBlock({stageOf({{0, 1}}), stageOf({{2, 3}}),
                         stageOf({{0, 2}})},
                        4);
    ASSERT_EQ(analysis.numStages(), 3u);

    EXPECT_EQ(analysis.nextUseAfter(0, 0), 2u);
    EXPECT_EQ(analysis.nextUseAfter(0, 1), kNoNextUse);
    EXPECT_EQ(analysis.nextUseAfter(0, 2), 1u);
    EXPECT_EQ(analysis.nextUseAfter(1, 2), 2u);
    EXPECT_EQ(analysis.nextUseAfter(2, 0), kNoNextUse);
}

TEST(ReuseAnalysisTest, HoldDecisionRespectsTheWindow)
{
    ReuseAnalysis analysis;
    analysis.beginBlock({stageOf({{0, 1}}), stageOf({{2, 3}}),
                         stageOf({{2, 3}}), stageOf({{0, 1}})},
                        4);

    // Qubit 0 idles in stages 1 and 2; next use is stage 3.
    EXPECT_FALSE(analysis.shouldHold(1, 0, 1)); // distance 2 > window 1
    EXPECT_TRUE(analysis.shouldHold(1, 0, 2));
    EXPECT_TRUE(analysis.shouldHold(2, 0, 1)); // distance 1
    // Qubit 2 never interacts after stage 2.
    EXPECT_FALSE(analysis.shouldHold(2, 2, 100));
}

TEST(ReuseAnalysisTest, ProgramEndIsAVirtualReuseEventInTheFinalBlock)
{
    const std::vector<Stage> stages = {stageOf({{0, 1}}), stageOf({{2, 3}}),
                                       stageOf({{2, 3}})};
    ReuseAnalysis inner;
    inner.beginBlock(stages, 4, /*final_block=*/false);
    // Qubit 0 never interacts again: a non-final block always parks it.
    EXPECT_FALSE(inner.shouldHold(1, 0, 100));

    ReuseAnalysis last;
    last.beginBlock(stages, 4, /*final_block=*/true);
    // Program end sits one past stage 2: distance 2 from stage 1.
    EXPECT_TRUE(last.shouldHold(1, 0, 2));
    EXPECT_FALSE(last.shouldHold(1, 0, 1));
}

TEST(ReuseAnalysisTest, BeginBlockResetsThePreviousBlock)
{
    ReuseAnalysis analysis;
    analysis.beginBlock({stageOf({{0, 1}})}, 2);
    analysis.beginBlock({stageOf({{0, 1}}), stageOf({{0, 1}})}, 2);
    EXPECT_EQ(analysis.nextUseAfter(0, 0), 1u);
}

// -------------------------------------------------------- ReuseAwareRouter

class ReuseRouterTest : public ::testing::Test
{
  protected:
    ReuseRouterTest() : machine_(MachineConfig::forQubits(4)) {}

    Machine machine_;
};

TEST_F(ReuseRouterTest, SoonReusedQubitsStayResident)
{
    Layout layout(machine_, 4);
    placeRowMajor(layout, ZoneKind::Storage);

    const std::vector<Stage> stages = {stageOf({{0, 1}}), stageOf({{2, 3}}),
                                       stageOf({{0, 1}})};
    ReuseAwareRouter router(machine_, {4, 1});
    router.beginBlock(stages, 4);

    router.planStageTransition(layout, stages[0]);
    EXPECT_EQ(layout.siteOf(0), layout.siteOf(1));

    // Stage 1: qubits 0 and 1 idle but interact again in stage 2 —
    // both are held in the compute zone; the co-located pair must be
    // split so the intervening pulse sees no unwanted blockade.
    const auto plan = router.planStageTransition(layout, stages[1]);
    EXPECT_EQ(plan.num_held, 2u);
    EXPECT_EQ(plan.num_parked, 0u);
    EXPECT_EQ(plan.num_reuse_relocated, 1u);
    EXPECT_EQ(layout.zoneOf(0), ZoneKind::Compute);
    EXPECT_EQ(layout.zoneOf(1), ZoneKind::Compute);
    EXPECT_NE(layout.siteOf(0), layout.siteOf(1));
    EXPECT_EQ(layout.occupancy(layout.siteOf(0)), 1u);
    EXPECT_EQ(layout.occupancy(layout.siteOf(1)), 1u);

    // Stage 2: the held qubits are consumed by their gate — two hits,
    // and the transition needs no storage retrieval for them.
    const auto final_plan = router.planStageTransition(layout, stages[2]);
    EXPECT_EQ(final_plan.num_reuse_hits, 2u);
    EXPECT_EQ(layout.siteOf(0), layout.siteOf(1));
    EXPECT_EQ(router.residencyStats().holds_started, 2u);
    EXPECT_EQ(router.residencyStats().holds_ended, 2u);
}

TEST_F(ReuseRouterTest, QubitsBeyondTheWindowParkInStorage)
{
    Layout layout(machine_, 4);
    placeRowMajor(layout, ZoneKind::Storage);

    // Qubits 0/1 idle for two stages; a window of 1 refuses the hold.
    const std::vector<Stage> stages = {stageOf({{0, 1}}), stageOf({{2, 3}}),
                                       stageOf({{2, 3}}), stageOf({{0, 1}})};
    ReuseAwareRouter router(machine_, {1, 1});
    router.beginBlock(stages, 4);

    router.planStageTransition(layout, stages[0]);
    const auto plan = router.planStageTransition(layout, stages[1]);
    EXPECT_EQ(plan.num_held, 0u);
    EXPECT_EQ(plan.num_parked, 2u);
    EXPECT_EQ(plan.num_lookahead_misses, 2u);
    EXPECT_EQ(layout.zoneOf(0), ZoneKind::Storage);
    EXPECT_EQ(layout.zoneOf(1), ZoneKind::Storage);
}

TEST_F(ReuseRouterTest, RoutingBeforeBeginBlockIsRejected)
{
    Layout layout(machine_, 4);
    placeRowMajor(layout, ZoneKind::Storage);
    ReuseAwareRouter router(machine_, {4, 1});
    EXPECT_THROW(router.planStageTransition(layout, stageOf({{0, 1}})),
                 InternalError);
}

// ------------------------------------------------------- pipeline behavior

CompileResult
compileWith(const Machine &machine, const Circuit &circuit,
            RoutingStrategy routing, bool use_storage = true)
{
    CompilerOptions options;
    options.routing = routing;
    options.use_storage = use_storage;
    return PowerMoveCompiler(machine, options).compile(circuit);
}

TEST(ReusePipelineTest, Table2SuiteValidatesUnderReuseRouting)
{
    for (const BenchmarkSpec &spec : table2Suite()) {
        const Machine machine(spec.machine_config);
        const Circuit circuit = spec.build();
        const auto result =
            compileWith(machine, circuit, RoutingStrategy::Reuse);
        EXPECT_NO_THROW(validateAgainstCircuit(result.schedule, circuit))
            << spec.name << " under --routing=reuse";
        EXPECT_GT(result.metrics.fidelity(), 0.0) << spec.name;
    }
}

TEST(ReusePipelineTest, ReuseCutsPlannedMovesOnQaoa)
{
    // Interaction-dense families where most idle spells are shorter
    // than the default lookahead window.
    for (const std::string family :
         {"QAOA-regular3", "QAOA-regular4", "QAOA-random"}) {
        std::size_t continuous_moves = 0;
        std::size_t reuse_moves = 0;
        for (const BenchmarkSpec &spec : table2Suite()) {
            if (spec.family != family)
                continue;
            const Machine machine(spec.machine_config);
            const Circuit circuit = spec.build();
            continuous_moves +=
                compileWith(machine, circuit, RoutingStrategy::Continuous)
                    .schedule.numQubitMoves();
            reuse_moves +=
                compileWith(machine, circuit, RoutingStrategy::Reuse)
                    .schedule.numQubitMoves();
        }
        ASSERT_GT(continuous_moves, 0u) << family;
        EXPECT_LT(reuse_moves, continuous_moves) << family;
    }
}

TEST(ReusePipelineTest, ReuseCutsPlannedMovesOnMultiLayerVqe)
{
    // Table 2's VQE rows are single-layer linear chains whose idle
    // qubits never enter the compute zone — no routing policy can save
    // a move there (bench/micro_reuse prints the tie). Realistic
    // multi-layer ansatze strand their chain-end atoms in the compute
    // zone at every layer boundary, which reuse picks up, and never do
    // worse anywhere in the family.
    std::size_t continuous_moves = 0;
    std::size_t reuse_moves = 0;
    for (const std::size_t n : {30u, 50u}) {
        const Machine machine(MachineConfig::forQubits(n));
        const Circuit circuit =
            makeVqe(n, 2, VqeEntanglement::Linear, 0xF00D + n);
        const auto continuous =
            compileWith(machine, circuit, RoutingStrategy::Continuous);
        const auto reuse =
            compileWith(machine, circuit, RoutingStrategy::Reuse);
        EXPECT_NO_THROW(validateAgainstCircuit(reuse.schedule, circuit));
        continuous_moves += continuous.schedule.numQubitMoves();
        reuse_moves += reuse.schedule.numQubitMoves();
    }
    EXPECT_LT(reuse_moves, continuous_moves);

    for (const BenchmarkSpec &spec : table2Suite()) {
        if (spec.family != "VQE")
            continue;
        const Machine machine(spec.machine_config);
        const Circuit circuit = spec.build();
        EXPECT_LE(compileWith(machine, circuit, RoutingStrategy::Reuse)
                      .schedule.numQubitMoves(),
                  compileWith(machine, circuit, RoutingStrategy::Continuous)
                      .schedule.numQubitMoves())
            << spec.name;
    }
}

TEST(ReusePipelineTest, ReuseProfilesReportTheNewCounters)
{
    const auto spec = findBenchmark("QAOA-regular3-30");
    const Machine machine(spec.machine_config);
    const auto result =
        compileWith(machine, spec.build(), RoutingStrategy::Reuse);

    const PassProfile *routing = nullptr;
    for (const PassProfile &profile : result.pass_profiles) {
        if (profile.pass == PassId::Routing)
            routing = &profile;
    }
    ASSERT_NE(routing, nullptr);
    std::uint64_t held = 0, saved = 0, hits = 0, relocated = 0;
    bool saw_misses = false;
    for (const PassCounter &counter : routing->counters) {
        if (counter.name == "qubits_held")
            held = counter.value;
        if (counter.name == "moves_saved")
            saved = counter.value;
        if (counter.name == "lookahead_hits")
            hits = counter.value;
        if (counter.name == "reuse_relocations")
            relocated = counter.value;
        if (counter.name == "lookahead_misses")
            saw_misses = true;
    }
    EXPECT_GT(held, 0u);
    // Relocated holds trade their park for a compute-zone move, so
    // only the stay-put holds count as moves saved outright.
    EXPECT_EQ(saved, held - relocated);
    EXPECT_GT(saved, 0u);
    EXPECT_GT(hits, 0u);
    EXPECT_TRUE(saw_misses);
}

TEST(ReusePipelineTest, StorageFreeConfigurationFallsBackToContinuous)
{
    const auto spec = findBenchmark("QSIM-rand-0.3-10");
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();

    const auto reuse = compileWith(machine, circuit, RoutingStrategy::Reuse,
                                   /*use_storage=*/false);
    const auto continuous =
        compileWith(machine, circuit, RoutingStrategy::Continuous,
                    /*use_storage=*/false);
    EXPECT_EQ(scheduleToJson(reuse.schedule),
              scheduleToJson(continuous.schedule));
}

TEST(ReusePipelineTest, ReuseSchedulesAreDeterministic)
{
    const auto spec = findBenchmark("VQE-30");
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();
    const auto a = compileWith(machine, circuit, RoutingStrategy::Reuse);
    const auto b = compileWith(machine, circuit, RoutingStrategy::Reuse);
    EXPECT_EQ(scheduleToJson(a.schedule), scheduleToJson(b.schedule));
}

TEST(ReuseStrategyNameTest, NamesRoundTripAndCatalogCoversRouting)
{
    for (const auto strategy :
         {RoutingStrategy::Continuous, RoutingStrategy::Reuse,
          RoutingStrategy::Fast, RoutingStrategy::Windowed}) {
        RoutingStrategy parsed{};
        EXPECT_TRUE(
            parseRoutingStrategy(routingStrategyName(strategy), parsed));
        EXPECT_EQ(parsed, strategy);
    }
    RoutingStrategy untouched = RoutingStrategy::Reuse;
    EXPECT_FALSE(parseRoutingStrategy("bogus", untouched));
    EXPECT_EQ(untouched, RoutingStrategy::Reuse);

    bool saw_routing = false;
    for (const StrategyCatalogEntry &entry : strategyCatalog()) {
        EXPECT_FALSE(entry.values.empty());
        if (entry.dimension == "routing") {
            saw_routing = true;
            EXPECT_EQ(entry.flag, "--routing");
            ASSERT_EQ(entry.values.size(), 4u);
            EXPECT_EQ(entry.values[0], "continuous"); // default first
            EXPECT_EQ(entry.values[1], "reuse");
            EXPECT_EQ(entry.values[2], "fast");
            EXPECT_EQ(entry.values[3], "windowed");
        }
    }
    EXPECT_TRUE(saw_routing);
}

} // namespace
} // namespace powermove
