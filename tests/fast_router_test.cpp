/** @file Differential lock: FastContinuousRouter == ContinuousRouter.
 *
 * The fast path promises bit-identical plans — same moves in the same
 * order, same labels, same counters, same RNG consumption — so every
 * test here drives the two routers side by side from identical inputs
 * and compares the outputs exactly. Coverage spans the Table 2 suite
 * (full pipeline through scheduleToJson) and randomized stage
 * sequences in both zone configurations (router level, plan by plan).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "compiler/powermove.hpp"
#include "isa/json.hpp"
#include "route/fast_router.hpp"
#include "route/router.hpp"
#include "workloads/suite.hpp"

namespace powermove {
namespace {

Stage
randomStage(Rng &rng, std::size_t num_qubits)
{
    std::vector<QubitId> qubits(num_qubits);
    for (QubitId q = 0; q < num_qubits; ++q)
        qubits[q] = q;
    rng.shuffle(qubits);
    const std::size_t pairs = 1 + rng.nextBelow(num_qubits / 2);
    Stage stage;
    for (std::size_t p = 0; p < pairs; ++p)
        stage.gates.push_back(
            CzGate{qubits[2 * p], qubits[2 * p + 1]}.canonical());
    return stage;
}

void
expectPlansIdentical(const TransitionPlan &reference,
                     const TransitionPlan &fast, int step)
{
    EXPECT_EQ(reference.moves, fast.moves) << "step " << step;
    EXPECT_EQ(reference.labels, fast.labels) << "step " << step;
    EXPECT_EQ(reference.num_parked, fast.num_parked) << "step " << step;
    EXPECT_EQ(reference.num_evicted, fast.num_evicted) << "step " << step;
}

/**
 * Router-level differential over random stage sequences: both routers
 * draw from equally seeded external streams, so any divergence — an
 * extra RNG draw, a different slot choice, a reordered move — shows up
 * as a plan or final-layout mismatch.
 */
class FastRouterDifferential
    : public ::testing::TestWithParam<std::tuple<bool, std::uint64_t>>
{};

TEST_P(FastRouterDifferential, RandomStageSequencesMatchPlanByPlan)
{
    const auto [use_storage, seed] = GetParam();
    const std::size_t n = 24;
    const Machine machine(MachineConfig::forQubits(n));
    const RouterOptions options{use_storage, seed};

    Rng reference_stream(seed);
    Rng fast_stream(seed);
    ContinuousRouter reference(machine, options, reference_stream);
    FastContinuousRouter fast(machine, options, fast_stream);

    Layout reference_layout(machine, n);
    Layout fast_layout(machine, n);
    placeRowMajor(reference_layout,
                  use_storage ? ZoneKind::Storage : ZoneKind::Compute);
    fast_layout.assignFrom(reference_layout);

    Rng stage_rng(seed * 31 + 7);
    for (int step = 0; step < 40; ++step) {
        const Stage stage = randomStage(stage_rng, n);
        const auto ref_plan =
            reference.planStageTransition(reference_layout, stage);
        const auto fast_plan = fast.planStageTransition(fast_layout, stage);
        expectPlansIdentical(ref_plan, fast_plan, step);
        for (QubitId q = 0; q < n; ++q) {
            ASSERT_EQ(reference_layout.siteOf(q), fast_layout.siteOf(q))
                << "layouts diverged at qubit " << q << ", step " << step;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, FastRouterDifferential,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8)));

/**
 * Acceptance lock: across the whole Table 2 suite, in both zone
 * configurations, --routing=fast emits the same machine program as the
 * reference router, bit for bit (serialized instruction streams compare
 * every field of every instruction plus the initial sites).
 */
TEST(FastRouterTable2Test, FullPipelineBitIdenticalOnTable2)
{
    for (const BenchmarkSpec &spec : table2Suite()) {
        const Machine machine(spec.machine_config);
        const Circuit circuit = spec.build();
        for (const bool use_storage : {true, false}) {
            CompilerOptions reference_options;
            reference_options.use_storage = use_storage;
            reference_options.routing = RoutingStrategy::Continuous;
            CompilerOptions fast_options = reference_options;
            fast_options.routing = RoutingStrategy::Fast;

            const auto reference =
                PowerMoveCompiler(machine, reference_options)
                    .compile(circuit);
            const auto fast =
                PowerMoveCompiler(machine, fast_options).compile(circuit);
            EXPECT_EQ(scheduleToJson(reference.schedule),
                      scheduleToJson(fast.schedule))
                << spec.name << (use_storage ? " with" : " without")
                << " storage diverged from the reference router";
        }
    }
}

/** Dense repeated stages exercise the statics/repeat-gate paths. */
TEST(FastRouterEdgeTest, RepeatedAndAdjacentGatesMatch)
{
    const std::size_t n = 9;
    const Machine machine(MachineConfig::forQubits(n));
    const RouterOptions options{true, 99};
    Rng ref_stream(5), fast_stream(5);
    ContinuousRouter reference(machine, options, ref_stream);
    FastContinuousRouter fast(machine, options, fast_stream);
    Layout ref_layout(machine, n), fast_layout(machine, n);
    placeRowMajor(ref_layout, ZoneKind::Storage);
    fast_layout.assignFrom(ref_layout);

    const std::vector<Stage> stages = {
        Stage{{CzGate{0, 1}, CzGate{2, 3}}},
        Stage{{CzGate{0, 1}, CzGate{2, 3}}}, // repeats: all static
        Stage{{CzGate{0, 2}, CzGate{1, 3}}}, // cross pairs, both compute
        Stage{{CzGate{4, 5}}},               // park the rest
        Stage{{CzGate{0, 1}, CzGate{4, 5}}},
    };
    int step = 0;
    for (const Stage &stage : stages) {
        const auto ref_plan = reference.planStageTransition(ref_layout, stage);
        const auto fast_plan = fast.planStageTransition(fast_layout, stage);
        expectPlansIdentical(ref_plan, fast_plan, step++);
    }
}

/** reset() rebuilds from an externally mutated layout. */
TEST(FastRouterResetTest, ResetResyncsAfterExternalMutation)
{
    const std::size_t n = 12;
    const Machine machine(MachineConfig::forQubits(n));
    FastContinuousRouter fast(machine, RouterOptions{true, 7});
    ContinuousRouter reference(machine, RouterOptions{true, 7});

    Layout fast_layout(machine, n), ref_layout(machine, n);
    placeRowMajor(fast_layout, ZoneKind::Storage);
    fast.planStageTransition(fast_layout, Stage{{CzGate{0, 1}}});

    // Mutate the layout behind the router's back, then resync both
    // sides: after reset() the fast router must agree with a fresh
    // reference router on the same layout.
    fast_layout.moveTo(2, machine.storageSites().back());
    fast.reset();
    ref_layout.assignFrom(fast_layout);

    const Stage stage{{CzGate{2, 3}, CzGate{0, 4}}};
    const auto ref_plan = reference.planStageTransition(ref_layout, stage);
    const auto fast_plan = fast.planStageTransition(fast_layout, stage);
    EXPECT_EQ(ref_plan.moves, fast_plan.moves);
    EXPECT_EQ(ref_plan.labels, fast_plan.labels);
}

} // namespace
} // namespace powermove
