/** @file Unit tests for string helpers. */

#include <gtest/gtest.h>

#include "common/strings.hpp"

namespace powermove {
namespace {

TEST(FormatGeneralTest, SignificantDigits)
{
    EXPECT_EQ(formatGeneral(3.14159, 3), "3.14");
    EXPECT_EQ(formatGeneral(12345.678, 6), "12345.7");
    EXPECT_EQ(formatGeneral(0.0), "0");
}

TEST(FormatFidelityTest, FixedAboveOnePercent)
{
    EXPECT_EQ(formatFidelity(0.75), "0.75");
    EXPECT_EQ(formatFidelity(0.05), "0.05");
    EXPECT_EQ(formatFidelity(1.0), "1.00");
}

TEST(FormatFidelityTest, ScientificBelowOnePercent)
{
    EXPECT_EQ(formatFidelity(6.92e-4), "6.92e-04");
    EXPECT_EQ(formatFidelity(7.12e-9), "7.12e-09");
}

TEST(FormatFidelityTest, ZeroStaysFixed)
{
    EXPECT_EQ(formatFidelity(0.0), "0.00");
}

TEST(FormatRatioTest, TwoDecimalsBelowHundred)
{
    EXPECT_EQ(formatRatio(3.46), "3.46x");
    EXPECT_EQ(formatRatio(1.0), "1.00x");
}

TEST(FormatRatioTest, OneDecimalAboveHundred)
{
    EXPECT_EQ(formatRatio(213.54), "213.5x"); // paper's headline number
    EXPECT_EQ(formatRatio(100.0), "100.0x");
}

TEST(JoinTest, Basic)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(TrimTest, RemovesSurroundingWhitespace)
{
    EXPECT_EQ(trim("  hello  "), "hello");
    EXPECT_EQ(trim("\t\nx\r "), "x");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("inner space kept"), "inner space kept");
}

TEST(SplitTest, KeepsEmptyFields)
{
    EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
    EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
    EXPECT_EQ(split("x,", ','), (std::vector<std::string>{"x", ""}));
}

TEST(StartsWithTest, Basics)
{
    EXPECT_TRUE(startsWith("powermove", "power"));
    EXPECT_FALSE(startsWith("power", "powermove"));
    EXPECT_TRUE(startsWith("anything", ""));
}

} // namespace
} // namespace powermove
