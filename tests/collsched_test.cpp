/** @file Tests for the Coll-Move scheduler (Sec. 6). */

#include <gtest/gtest.h>

#include "collsched/intra_stage.hpp"
#include "collsched/multi_aod.hpp"
#include "common/error.hpp"

namespace powermove {
namespace {

class CollSchedTest : public ::testing::Test
{
  protected:
    CollSchedTest() : machine_(MachineConfig::forQubits(16)) {}

    SiteId compute(std::size_t i) const { return static_cast<SiteId>(i); }
    SiteId storage(std::size_t i) const
    {
        return machine_.storageSites()[i];
    }

    /** A group carrying @p ins storage move-ins and @p outs move-outs. */
    CollMove
    groupWith(std::size_t ins, std::size_t outs, QubitId first_qubit)
    {
        CollMove group;
        QubitId q = first_qubit;
        for (std::size_t i = 0; i < ins; ++i, ++q)
            group.moves.push_back({q, compute(i), storage(i + q)});
        for (std::size_t i = 0; i < outs; ++i, ++q)
            group.moves.push_back({q, storage(i + q + 8), compute(i + 4)});
        return group;
    }

    Machine machine_;
};

TEST_F(CollSchedTest, StorageBalanceCounts)
{
    EXPECT_EQ(storageBalance(machine_, groupWith(2, 0, 0)), 2);
    EXPECT_EQ(storageBalance(machine_, groupWith(0, 3, 0)), -3);
    EXPECT_EQ(storageBalance(machine_, groupWith(1, 1, 0)), 0);
    // Intra-compute moves are neutral.
    CollMove lateral;
    lateral.moves = {{0, compute(0), compute(5)}};
    EXPECT_EQ(storageBalance(machine_, lateral), 0);
}

TEST_F(CollSchedTest, OrderCollMovesDescendingBalance)
{
    std::vector<CollMove> groups = {
        groupWith(0, 2, 0), // balance -2
        groupWith(2, 0, 4), // balance +2
        groupWith(1, 1, 8), // balance 0
    };
    const auto ordered = orderCollMoves(machine_, std::move(groups));
    ASSERT_EQ(ordered.size(), 3u);
    EXPECT_EQ(storageBalance(machine_, ordered[0]), 2);
    EXPECT_EQ(storageBalance(machine_, ordered[1]), 0);
    EXPECT_EQ(storageBalance(machine_, ordered[2]), -2);
}

TEST_F(CollSchedTest, OrderingIsStableForEqualBalance)
{
    CollMove a;
    a.moves = {{0, compute(0), compute(1)}};
    CollMove b;
    b.moves = {{1, compute(2), compute(3)}};
    const auto ordered = orderCollMoves(machine_, {a, b});
    EXPECT_EQ(ordered[0].moves[0].qubit, 0u);
    EXPECT_EQ(ordered[1].moves[0].qubit, 1u);
}

TEST_F(CollSchedTest, BatchChunking)
{
    std::vector<CollMove> groups;
    for (QubitId q = 0; q < 5; ++q) {
        CollMove g;
        g.moves = {{q, compute(q), compute(q + 5)}};
        groups.push_back(g);
    }
    const auto batches = batchForAods(groups, 2);
    ASSERT_EQ(batches.size(), 3u);
    EXPECT_EQ(batches[0].groups.size(), 2u);
    EXPECT_EQ(batches[1].groups.size(), 2u);
    EXPECT_EQ(batches[2].groups.size(), 1u);
    // Order within batches preserves the scheduled sequence.
    EXPECT_EQ(batches[0].groups[0].moves[0].qubit, 0u);
    EXPECT_EQ(batches[2].groups[0].moves[0].qubit, 4u);
}

TEST_F(CollSchedTest, SingleAodMeansOneGroupPerBatch)
{
    std::vector<CollMove> groups(3);
    for (QubitId q = 0; q < 3; ++q)
        groups[q].moves = {{q, compute(q), compute(q + 4)}};
    const auto batches = batchForAods(groups, 1);
    ASSERT_EQ(batches.size(), 3u);
    for (const auto &batch : batches)
        EXPECT_EQ(batch.groups.size(), 1u);
}

TEST_F(CollSchedTest, ZeroAodsRejected)
{
    EXPECT_THROW(batchForAods({}, 0), ConfigError);
}

TEST_F(CollSchedTest, EmptyBatchListForNoGroups)
{
    EXPECT_TRUE(batchForAods({}, 2).empty());
}

TEST_F(CollSchedTest, BatchDurationIsTransferPlusSlowestMove)
{
    const auto &params = machine_.params();
    CollMove slow;
    slow.moves = {{0, compute(0), compute(15)}}; // (0,0) -> (3,3): 63.6um
    CollMove fast;
    fast.moves = {{1, compute(1), compute(2)}}; // 15um

    AodBatch batch;
    batch.groups = {fast, slow};
    const double expected =
        2.0 * params.t_transfer.micros() +
        params.moveDuration(machine_.distanceBetween(compute(0), compute(15)))
            .micros();
    EXPECT_DOUBLE_EQ(batch.duration(machine_).micros(), expected);
    EXPECT_EQ(batch.numMoves(), 2u);
}

TEST_F(CollSchedTest, EmptyBatchIsFree)
{
    EXPECT_DOUBLE_EQ(AodBatch{}.duration(machine_).micros(), 0.0);
}

TEST_F(CollSchedTest, DurationBalancedSortsByMoveLength)
{
    // Alternating long/short groups: balanced chunking pairs peers.
    std::vector<CollMove> groups;
    for (QubitId q = 0; q < 4; ++q) {
        CollMove g;
        const SiteId to = (q % 2 == 0) ? compute(15) : compute(q + 1);
        g.moves = {{q, compute(q), to}};
        groups.push_back(g);
    }
    const auto batches = batchForAods(machine_, groups, 2,
                                      AodBatchPolicy::DurationBalanced);
    ASSERT_EQ(batches.size(), 2u);
    // First batch holds the two long moves (targets at site 15).
    for (const auto &group : batches[0].groups)
        EXPECT_EQ(group.moves[0].to, compute(15));
    for (const auto &group : batches[1].groups)
        EXPECT_NE(group.moves[0].to, compute(15));
}

TEST_F(CollSchedTest, DurationBalancedNeverSlowerInTotal)
{
    std::vector<CollMove> groups;
    for (QubitId q = 0; q < 9; ++q) {
        CollMove g;
        g.moves = {{q, compute(q), compute((q * 5 + 3) % 16)}};
        groups.push_back(g);
    }
    for (const std::size_t aods : {2u, 3u, 4u}) {
        double in_order = 0.0;
        for (const auto &batch :
             batchForAods(machine_, groups, aods, AodBatchPolicy::InOrder))
            in_order += batch.duration(machine_).micros();
        double balanced = 0.0;
        for (const auto &batch : batchForAods(
                 machine_, groups, aods, AodBatchPolicy::DurationBalanced))
            balanced += batch.duration(machine_).micros();
        EXPECT_LE(balanced, in_order + 1e-9) << aods << " AODs";
    }
}

TEST_F(CollSchedTest, PolicyOverloadIsNoOpForSingleAod)
{
    std::vector<CollMove> groups;
    for (QubitId q = 0; q < 3; ++q) {
        CollMove g;
        g.moves = {{q, compute(q), compute(q + 8)}};
        groups.push_back(g);
    }
    const auto in_order =
        batchForAods(machine_, groups, 1, AodBatchPolicy::InOrder);
    const auto balanced =
        batchForAods(machine_, groups, 1, AodBatchPolicy::DurationBalanced);
    ASSERT_EQ(in_order.size(), balanced.size());
    for (std::size_t i = 0; i < in_order.size(); ++i)
        EXPECT_EQ(in_order[i].groups[0].moves, balanced[i].groups[0].moves);
}

TEST_F(CollSchedTest, MoreAodsNeverSlower)
{
    std::vector<CollMove> groups;
    for (QubitId q = 0; q < 8; ++q) {
        CollMove g;
        g.moves = {{q, compute(q), compute(15 - q)}};
        groups.push_back(g);
    }
    double previous = 1e100;
    for (const std::size_t aods : {1u, 2u, 4u, 8u}) {
        double total = 0.0;
        for (const auto &batch : batchForAods(groups, aods))
            total += batch.duration(machine_).micros();
        EXPECT_LE(total, previous + 1e-9);
        previous = total;
    }
}

} // namespace
} // namespace powermove
