/** @file Tests for the Continuous Router (Sec. 5.2). */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "route/router.hpp"

namespace powermove {
namespace {

Stage
stageOf(std::initializer_list<CzGate> gates)
{
    Stage stage;
    for (const auto &gate : gates)
        stage.gates.push_back(gate.canonical());
    return stage;
}

/** Checks the router's layout post-conditions for one stage. */
void
checkStageLayout(const Machine &machine, const Layout &layout,
                 const Stage &stage, bool use_storage)
{
    std::vector<bool> interacting(layout.numQubits(), false);
    for (const auto &gate : stage.gates) {
        EXPECT_EQ(layout.siteOf(gate.a), layout.siteOf(gate.b));
        EXPECT_EQ(layout.zoneOf(gate.a), ZoneKind::Compute);
        interacting[gate.a] = true;
        interacting[gate.b] = true;
    }
    // Non-pair qubits may not share a site with anyone.
    std::map<SiteId, std::vector<QubitId>> by_site;
    for (QubitId q = 0; q < layout.numQubits(); ++q)
        by_site[layout.siteOf(q)].push_back(q);
    for (const auto &[site, occupants] : by_site) {
        ASSERT_LE(occupants.size(), 2u);
        if (occupants.size() == 2) {
            EXPECT_TRUE(interacting[occupants[0]]);
            EXPECT_TRUE(interacting[occupants[1]]);
            EXPECT_EQ(machine.zoneOf(site), ZoneKind::Compute);
        }
    }
    if (use_storage) {
        for (QubitId q = 0; q < layout.numQubits(); ++q) {
            if (!interacting[q]) {
                EXPECT_EQ(layout.zoneOf(q), ZoneKind::Storage)
                    << "idle qubit " << q << " left outside storage";
            }
        }
    }
}

class RouterTest : public ::testing::Test
{
  protected:
    RouterTest() : machine_(MachineConfig::forQubits(16)) {}

    Layout
    storageLayout(std::size_t n)
    {
        Layout layout(machine_, n);
        placeRowMajor(layout, ZoneKind::Storage);
        return layout;
    }

    Layout
    computeLayout(std::size_t n)
    {
        Layout layout(machine_, n);
        placeRowMajor(layout, ZoneKind::Compute);
        return layout;
    }

    Machine machine_;
};

TEST_F(RouterTest, BothInStorageGetMobileAndUndecided)
{
    ContinuousRouter router(machine_, {true, 1});
    auto layout = storageLayout(4);
    const auto stage = stageOf({{0, 1}});
    const auto plan = router.planStageTransition(layout, stage);

    // Fig. 4(b): one endpoint mobile, the other undecided.
    ASSERT_EQ(plan.labels.size(), 2u);
    EXPECT_EQ(plan.labels[0].second, MoveLabel::Mobile);
    EXPECT_EQ(plan.labels[1].second, MoveLabel::Undecided);
    checkStageLayout(machine_, layout, stage, true);
}

TEST_F(RouterTest, StorageComputeCaseKeepsComputeQubitStatic)
{
    ContinuousRouter router(machine_, {true, 1});
    auto layout = storageLayout(4);
    // Stage 1 brings 0 and 1 into the compute zone.
    router.planStageTransition(layout, stageOf({{0, 1}}));
    // Stage 2 interacts 0 (compute) with 2 (storage): Fig. 4(c) case 1.
    const auto stage = stageOf({{0, 2}});
    const SiteId site_before = layout.siteOf(0);
    const auto plan = router.planStageTransition(layout, stage);

    bool q0_static = false;
    for (const auto &[q, label] : plan.labels) {
        if (q == 0)
            q0_static = label == MoveLabel::Static;
        if (q == 2) {
            EXPECT_EQ(label, MoveLabel::Mobile);
        }
    }
    EXPECT_TRUE(q0_static);
    EXPECT_EQ(layout.siteOf(0), site_before);
    EXPECT_EQ(layout.siteOf(2), site_before);
    checkStageLayout(machine_, layout, stage, true);
}

TEST_F(RouterTest, RepeatedGateNeedsNoMoves)
{
    ContinuousRouter router(machine_, {true, 1});
    auto layout = storageLayout(4);
    router.planStageTransition(layout, stageOf({{0, 1}}));
    const SiteId site = layout.siteOf(0);

    const auto plan = router.planStageTransition(layout, stageOf({{0, 1}}));
    EXPECT_TRUE(plan.moves.empty());
    EXPECT_EQ(layout.siteOf(0), site);
    EXPECT_EQ(layout.siteOf(1), site);
    for (const auto &[q, label] : plan.labels)
        EXPECT_EQ(label, MoveLabel::Static);
}

TEST_F(RouterTest, IdleQubitsAreParkedInStorage)
{
    ContinuousRouter router(machine_, {true, 1});
    auto layout = storageLayout(6);
    router.planStageTransition(layout, stageOf({{0, 1}, {2, 3}}));
    EXPECT_EQ(layout.countInZone(ZoneKind::Compute), 4u);

    // Next stage idles 2 and 3: both must be parked.
    const auto plan = router.planStageTransition(layout, stageOf({{0, 1}}));
    EXPECT_EQ(plan.num_parked, 2u);
    EXPECT_EQ(layout.countInZone(ZoneKind::Compute), 2u);
    EXPECT_EQ(layout.zoneOf(2), ZoneKind::Storage);
    EXPECT_EQ(layout.zoneOf(3), ZoneKind::Storage);
}

TEST_F(RouterTest, ParkedQubitPrefersOwnColumn)
{
    ContinuousRouter router(machine_, {true, 1});
    auto layout = storageLayout(2);
    router.planStageTransition(layout, stageOf({{0, 1}}));
    const auto column = machine_.coordOf(layout.siteOf(0)).x;

    const auto plan = router.planStageTransition(layout, stageOf({}));
    EXPECT_EQ(plan.num_parked, 2u);
    // The pair shared one site; at least one lands in the same column.
    const bool same_column =
        machine_.coordOf(layout.siteOf(0)).x == column ||
        machine_.coordOf(layout.siteOf(1)).x == column;
    EXPECT_TRUE(same_column);
}

TEST_F(RouterTest, NonStorageEvictsStalePairs)
{
    ContinuousRouter router(machine_, {false, 1});
    auto layout = computeLayout(6);
    router.planStageTransition(layout, stageOf({{0, 1}}));
    EXPECT_EQ(layout.siteOf(0), layout.siteOf(1));

    // 0 and 1 both idle now: the stale pair must split.
    const auto stage = stageOf({{2, 3}});
    const auto plan = router.planStageTransition(layout, stage);
    EXPECT_EQ(plan.num_evicted, 1u);
    EXPECT_NE(layout.siteOf(0), layout.siteOf(1));
    checkStageLayout(machine_, layout, stage, false);
}

TEST_F(RouterTest, NonStorageEvictsIdleAtStaticSite)
{
    ContinuousRouter router(machine_, {false, 7});
    auto layout = computeLayout(6);
    // Pair up (0,1); afterwards 1 idles co-located with 0 which stays
    // interacting: 1 must be evicted from the interaction site.
    router.planStageTransition(layout, stageOf({{0, 1}}));
    const auto stage = stageOf({{0, 2}});
    router.planStageTransition(layout, stage);
    EXPECT_NE(layout.siteOf(1), layout.siteOf(0));
    checkStageLayout(machine_, layout, stage, false);
}

TEST_F(RouterTest, NonStorageNeverUsesStorage)
{
    ContinuousRouter router(machine_, {false, 1});
    auto layout = computeLayout(8);
    for (const auto &stage :
         {stageOf({{0, 1}, {2, 3}}), stageOf({{1, 2}, {4, 5}}),
          stageOf({{0, 7}, {3, 6}})}) {
        router.planStageTransition(layout, stage);
        EXPECT_EQ(layout.countInZone(ZoneKind::Storage), 0u);
    }
}

TEST_F(RouterTest, MovesDepartFromTruePositions)
{
    ContinuousRouter router(machine_, {true, 1});
    auto layout = storageLayout(8);
    Layout before = layout;
    const auto plan =
        router.planStageTransition(layout, stageOf({{0, 5}, {2, 7}}));
    for (const auto &move : plan.moves) {
        EXPECT_EQ(move.from, before.siteOf(move.qubit));
        EXPECT_EQ(layout.siteOf(move.qubit), move.to);
        EXPECT_NE(move.from, move.to);
    }
}

TEST_F(RouterTest, EachQubitMovesAtMostOncePerTransition)
{
    ContinuousRouter router(machine_, {true, 1});
    auto layout = storageLayout(10);
    const auto plan = router.planStageTransition(
        layout, stageOf({{0, 9}, {1, 8}, {2, 7}}));
    std::vector<QubitId> movers;
    for (const auto &move : plan.moves)
        movers.push_back(move.qubit);
    std::sort(movers.begin(), movers.end());
    EXPECT_TRUE(std::adjacent_find(movers.begin(), movers.end()) ==
                movers.end());
}

TEST_F(RouterTest, DeterministicForFixedSeed)
{
    const RouterOptions options{true, 1234};
    ContinuousRouter router_a(machine_, options);
    ContinuousRouter router_b(machine_, options);
    auto layout_a = storageLayout(8);
    auto layout_b = storageLayout(8);
    for (const auto &stage :
         {stageOf({{0, 1}, {2, 3}}), stageOf({{1, 2}}), stageOf({{0, 3}})}) {
        const auto plan_a = router_a.planStageTransition(layout_a, stage);
        const auto plan_b = router_b.planStageTransition(layout_b, stage);
        EXPECT_EQ(plan_a.moves, plan_b.moves);
    }
}

TEST_F(RouterTest, RequiresPlacedLayout)
{
    ContinuousRouter router(machine_, {true, 1});
    Layout layout(machine_, 4);
    EXPECT_THROW(router.planStageTransition(layout, stageOf({{0, 1}})),
                 InternalError);
}

TEST_F(RouterTest, RejectsOverlappingStage)
{
    ContinuousRouter router(machine_, {true, 1});
    auto layout = storageLayout(4);
    Stage bad;
    bad.gates = {CzGate{0, 1}, CzGate{1, 2}};
    EXPECT_THROW(router.planStageTransition(layout, bad), InternalError);
}

/** Multi-stage randomized property sweep. */
class RouterProperty
    : public ::testing::TestWithParam<std::tuple<bool, std::uint64_t>>
{};

TEST_P(RouterProperty, InvariantsHoldOverRandomStageSequences)
{
    const auto [use_storage, seed] = GetParam();
    const std::size_t n = 20;
    const Machine machine(MachineConfig::forQubits(n));
    ContinuousRouter router(machine, {use_storage, seed});
    Layout layout(machine, n);
    placeRowMajor(layout,
                  use_storage ? ZoneKind::Storage : ZoneKind::Compute);

    Rng rng(seed * 31 + 7);
    for (int step = 0; step < 25; ++step) {
        // Random matching over a random subset of qubits.
        std::vector<QubitId> qubits(n);
        for (QubitId q = 0; q < n; ++q)
            qubits[q] = q;
        rng.shuffle(qubits);
        const std::size_t pairs = 1 + rng.nextBelow(n / 2);
        Stage stage;
        for (std::size_t p = 0; p < pairs; ++p)
            stage.gates.push_back(
                CzGate{qubits[2 * p], qubits[2 * p + 1]}.canonical());

        router.planStageTransition(layout, stage);
        checkStageLayout(machine, layout, stage, use_storage);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, RouterProperty,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)));

} // namespace
} // namespace powermove
