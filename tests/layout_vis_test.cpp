/** @file Tests for the ASCII layout renderer. */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "report/layout_vis.hpp"

namespace powermove {
namespace {

TEST(LayoutVisTest, EmptyMachineRendersDots)
{
    const Machine machine(MachineConfig::forQubits(4));
    const auto text = renderPositions(machine, {});
    // 2x2 compute, gap, 2x4 storage: all sites empty.
    EXPECT_NE(text.find("compute"), std::string::npos);
    EXPECT_NE(text.find("storage"), std::string::npos);
    EXPECT_NE(text.find(". ."), std::string::npos);
    EXPECT_NE(text.find("~"), std::string::npos); // gap rows
}

TEST(LayoutVisTest, QubitsShowTheirIds)
{
    const Machine machine(MachineConfig::forQubits(4));
    // Qubits 0..3 on the 2x2 compute grid, row-major.
    const auto text = renderPositions(machine, {0, 1, 2, 3});
    EXPECT_NE(text.find("0 1"), std::string::npos);
    EXPECT_NE(text.find("2 3"), std::string::npos);
}

TEST(LayoutVisTest, PairShowsAtSign)
{
    const Machine machine(MachineConfig::forQubits(4));
    const auto text = renderPositions(machine, {0, 0});
    EXPECT_NE(text.find('@'), std::string::npos);
}

TEST(LayoutVisTest, QubitIdsWrapAtTen)
{
    const Machine machine(MachineConfig::forQubits(16));
    std::vector<SiteId> positions(13);
    for (QubitId q = 0; q < 13; ++q)
        positions[q] = q;
    const auto text = renderPositions(machine, positions);
    // Qubit 12 renders as '2' (mod 10); ensure no crash and its row
    // exists.
    EXPECT_NE(text.find("compute"), std::string::npos);
}

TEST(LayoutVisTest, RendersLayoutObject)
{
    const Machine machine(MachineConfig::forQubits(9));
    Layout layout(machine, 4);
    placeRowMajor(layout, ZoneKind::Storage);
    const auto text = renderLayout(layout);
    EXPECT_NE(text.find("storage"), std::string::npos);
    EXPECT_NE(text.find('0'), std::string::npos);
    EXPECT_NE(text.find('3'), std::string::npos);
}

TEST(LayoutVisTest, UnplacedLayoutRejected)
{
    const Machine machine(MachineConfig::forQubits(9));
    const Layout layout(machine, 2);
    EXPECT_THROW(renderLayout(layout), InternalError);
}

TEST(LayoutVisTest, LineCountMatchesMachineRows)
{
    const Machine machine(MachineConfig::forQubits(9)); // 3+2+6 rows
    const auto text = renderPositions(machine, {});
    std::size_t lines = 0;
    for (const char c : text)
        lines += c == '\n';
    EXPECT_EQ(lines, 11u);
}

} // namespace
} // namespace powermove
