/** @file Scale regression guard.
 *
 * Compiles well beyond the paper's 100-qubit ceiling and checks both
 * correctness (full validation) and that compile time stays in the
 * near-linear regime the paper claims — catching accidental quadratic
 * regressions in the router's search structures.
 */

#include <gtest/gtest.h>

#include "compiler/powermove.hpp"
#include "enola/enola.hpp"
#include "isa/validator.hpp"
#include "workloads/qaoa.hpp"

namespace powermove {
namespace {

TEST(ScaleTest, CompilesAndValidates256Qubits)
{
    const std::size_t n = 256;
    const Machine machine(MachineConfig::forQubits(n));
    const Circuit circuit = makeQaoaRegular(n, 3, 1, 77);

    const auto result = PowerMoveCompiler(machine, {true, 1}).compile(circuit);
    EXPECT_NO_THROW(validateAgainstCircuit(result.schedule, circuit));
    EXPECT_EQ(result.metrics.excitation_exposures, 0u);
    EXPECT_GT(result.metrics.fidelity(), 0.0);
}

TEST(ScaleTest, CompilesAndValidates400QubitsNonStorage)
{
    const std::size_t n = 400;
    const Machine machine(MachineConfig::forQubits(n));
    const Circuit circuit = makeQaoaRegular(n, 3, 1, 78);
    const auto result =
        PowerMoveCompiler(machine, {false, 2}).compile(circuit);
    EXPECT_NO_THROW(validateAgainstCircuit(result.schedule, circuit));
}

TEST(ScaleTest, EnolaValidatesAtScale)
{
    const std::size_t n = 256;
    const Machine machine(MachineConfig::forQubits(n));
    const Circuit circuit = makeQaoaRegular(n, 3, 1, 79);
    const auto result = EnolaCompiler(machine).compile(circuit);
    EXPECT_NO_THROW(validateAgainstCircuit(result.schedule, circuit));
}

TEST(ScaleTest, CompileTimeGrowsSubQuadratically)
{
    // Min-of-3 compile times at n and 4n: a clean quadratic would give
    // a 16x ratio; require comfortably less (the grouping pass is the
    // only super-linear component and its constant is tiny).
    const auto measure = [](std::size_t n) {
        const Machine machine(MachineConfig::forQubits(n));
        const Circuit circuit = makeQaoaRegular(n, 3, 1, 80);
        const PowerMoveCompiler compiler(machine, {true, 1});
        double best = 1e300;
        for (int i = 0; i < 3; ++i)
            best = std::min(best,
                            compiler.compile(circuit).compile_time.micros());
        return best;
    };
    const double small = measure(100);
    const double large = measure(400);
    EXPECT_LT(large, small * 13.0)
        << "compile time scaled by " << large / small << " over a 4x input";
}

TEST(ScaleTest, DeepCircuitManyStages)
{
    // 60 sequential blocks of one gate each: stresses per-transition
    // bookkeeping reuse.
    const std::size_t n = 64;
    const Machine machine(MachineConfig::forQubits(n));
    Circuit circuit(n, "deep");
    for (QubitId q = 0; q + 1 < n; ++q) {
        circuit.append(CzGate{q, static_cast<QubitId>(q + 1)});
        circuit.append(OneQGate{OneQKind::H, q, 0.0});
    }
    const auto result = PowerMoveCompiler(machine, {true, 1}).compile(circuit);
    EXPECT_NO_THROW(validateAgainstCircuit(result.schedule, circuit));
    EXPECT_EQ(result.num_stages, static_cast<std::size_t>(n - 1));
}

} // namespace
} // namespace powermove
