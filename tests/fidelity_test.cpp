/** @file Tests for the Eq. (1) fidelity evaluator. */

#include <gtest/gtest.h>

#include <cmath>

#include "fidelity/evaluator.hpp"

namespace powermove {
namespace {

class FidelityTest : public ::testing::Test
{
  protected:
    FidelityTest() : machine_(MachineConfig::forQubits(9)) {}

    static AodBatch
    batchOf(std::vector<QubitMove> moves)
    {
        AodBatch batch;
        batch.groups.push_back(CollMove{std::move(moves)});
        return batch;
    }

    Machine machine_;
};

TEST_F(FidelityTest, EmptyScheduleIsPerfect)
{
    MachineSchedule schedule(machine_, {0, 1});
    const auto result = evaluateSchedule(schedule);
    EXPECT_DOUBLE_EQ(result.fidelity(), 1.0);
    EXPECT_DOUBLE_EQ(result.fidelity(true), 1.0);
    EXPECT_DOUBLE_EQ(result.exec_time.micros(), 0.0);
    EXPECT_DOUBLE_EQ(result.total_idle.micros(), 0.0);
}

TEST_F(FidelityTest, TwoQubitFactorPerGate)
{
    MachineSchedule schedule(machine_, {0, 0, 2, 2});
    schedule.addRydberg({CzGate{0, 1}, CzGate{2, 3}}, 0);
    const auto result = evaluateSchedule(schedule);
    EXPECT_EQ(result.cz_gates, 2u);
    EXPECT_NEAR(result.two_q_factor, 0.995 * 0.995, 1e-12);
    // Everybody interacts: no excitation exposure.
    EXPECT_EQ(result.excitation_exposures, 0u);
    EXPECT_DOUBLE_EQ(result.exec_time.micros(), 0.27);
}

TEST_F(FidelityTest, ExcitationCountsIdleComputeQubits)
{
    // Qubits 2 and 3 idle in the compute zone during the pulse.
    MachineSchedule schedule(machine_, {0, 0, 2, 3});
    schedule.addRydberg({CzGate{0, 1}}, 0);
    const auto result = evaluateSchedule(schedule);
    EXPECT_EQ(result.excitation_exposures, 2u);
    EXPECT_NEAR(result.excitation_factor, 0.9975 * 0.9975, 1e-12);
}

TEST_F(FidelityTest, StorageShieldsFromExcitation)
{
    const auto storage = machine_.storageSites();
    MachineSchedule schedule(machine_, {0, 0, storage[0], storage[1]});
    schedule.addRydberg({CzGate{0, 1}}, 0);
    const auto result = evaluateSchedule(schedule);
    EXPECT_EQ(result.excitation_exposures, 0u);
    EXPECT_DOUBLE_EQ(result.excitation_factor, 1.0);
}

TEST_F(FidelityTest, TransferCountsTwoPerMove)
{
    MachineSchedule schedule(machine_, {0, 1, 2});
    schedule.addMoveBatch(batchOf({{1, 1, 0}, {2, 2, 5}}));
    const auto result = evaluateSchedule(schedule);
    EXPECT_EQ(result.transfers, 4u);
    EXPECT_NEAR(result.transfer_factor, std::pow(0.999, 4), 1e-12);
}

TEST_F(FidelityTest, MoveBatchTimeAndIdleAccounting)
{
    MachineSchedule schedule(machine_, {0, 1, 2});
    schedule.addMoveBatch(batchOf({{1, 1, 4}})); // 15um*sqrt(2) diagonal
    const auto result = evaluateSchedule(schedule);

    const double move_us =
        machine_.params()
            .moveDuration(machine_.distanceBetween(1, 4))
            .micros();
    const double expected = 30.0 + move_us;
    EXPECT_NEAR(result.exec_time.micros(), expected, 1e-9);
    // All three qubits are in the compute zone: all idle for the batch.
    EXPECT_NEAR(result.total_idle.micros(), 3 * expected, 1e-9);
    EXPECT_LT(result.decoherence_factor, 1.0);
}

TEST_F(FidelityTest, StorageResidentsDoNotDecohere)
{
    const auto storage = machine_.storageSites();
    MachineSchedule schedule(machine_, {0, 1, storage[0]});
    schedule.addMoveBatch(batchOf({{1, 1, 3}}));
    const auto result = evaluateSchedule(schedule);
    // Only the two compute-zone qubits accrue idle time.
    const double batch_us = result.exec_time.micros();
    EXPECT_NEAR(result.total_idle.micros(), 2 * batch_us, 1e-9);
}

TEST_F(FidelityTest, MovingIntoStorageStillCostsTransitTime)
{
    const auto storage = machine_.storageSites();
    MachineSchedule schedule(machine_, {0});
    schedule.addMoveBatch(batchOf({{0, 0, storage[0]}}));
    const auto result = evaluateSchedule(schedule);
    // In transit toward storage: unprotected during the move itself.
    EXPECT_GT(result.total_idle.micros(), 0.0);
}

TEST_F(FidelityTest, OneQLayerTimeUsesDepth)
{
    MachineSchedule schedule(machine_, {0, 1});
    schedule.addOneQLayer(5, 3);
    const auto result = evaluateSchedule(schedule);
    EXPECT_EQ(result.one_q_gates, 5u);
    EXPECT_DOUBLE_EQ(result.exec_time.micros(), 3.0);
    EXPECT_NEAR(result.one_q_factor, std::pow(0.9999, 5), 1e-12);
    // 1Q layers are excluded from comparisons by default.
    EXPECT_DOUBLE_EQ(result.fidelity(), 1.0);
    EXPECT_LT(result.fidelity(true), 1.0);
}

TEST_F(FidelityTest, DecoherenceMatchesClosedForm)
{
    MachineSchedule schedule(machine_, {0, 1});
    schedule.addMoveBatch(batchOf({{1, 1, 4}}));
    const auto result = evaluateSchedule(schedule);
    const double per_qubit_idle = result.exec_time.micros();
    const double t2 = machine_.params().t2.micros();
    const double expected = (1.0 - per_qubit_idle / t2) *
                            (1.0 - per_qubit_idle / t2);
    EXPECT_NEAR(result.decoherence_factor, expected, 1e-12);
}

TEST_F(FidelityTest, FidelityIsProductOfFactors)
{
    MachineSchedule schedule(machine_, {0, 0, 2, 3});
    schedule.addOneQLayer(4, 1);
    schedule.addMoveBatch(batchOf({{2, 2, 5}}));
    schedule.addRydberg({CzGate{0, 1}}, 0);
    const auto result = evaluateSchedule(schedule);
    EXPECT_NEAR(result.fidelity(),
                result.two_q_factor * result.excitation_factor *
                    result.transfer_factor * result.decoherence_factor,
                1e-12);
    EXPECT_NEAR(result.fidelity(true),
                result.fidelity() * result.one_q_factor, 1e-12);
}

TEST_F(FidelityTest, BreakdownToStringMentionsKeyFields)
{
    MachineSchedule schedule(machine_, {0, 0});
    schedule.addRydberg({CzGate{0, 1}}, 0);
    const auto text = evaluateSchedule(schedule).toString();
    EXPECT_NE(text.find("fidelity="), std::string::npos);
    EXPECT_NE(text.find("T_exe="), std::string::npos);
    EXPECT_NE(text.find("pulses=1"), std::string::npos);
}

} // namespace
} // namespace powermove
