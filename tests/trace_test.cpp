/** @file Tests for the schedule timeline trace. */

#include <gtest/gtest.h>

#include "compiler/powermove.hpp"
#include "fidelity/evaluator.hpp"
#include "fidelity/trace.hpp"
#include "workloads/suite.hpp"

namespace powermove {
namespace {

class TraceTest : public ::testing::Test
{
  protected:
    TraceTest() : machine_(MachineConfig::forQubits(9)) {}

    static AodBatch
    batchOf(std::vector<QubitMove> moves)
    {
        AodBatch batch;
        batch.groups.push_back(CollMove{std::move(moves)});
        return batch;
    }

    Machine machine_;
};

TEST_F(TraceTest, EmptyScheduleHasZeroMakespan)
{
    MachineSchedule schedule(machine_, {0, 1});
    const auto trace = traceSchedule(schedule);
    EXPECT_TRUE(trace.instructions.empty());
    EXPECT_DOUBLE_EQ(trace.total.micros(), 0.0);
    EXPECT_DOUBLE_EQ(trace.storageUtilization(), 0.0);
    EXPECT_DOUBLE_EQ(trace.movementShare(), 0.0);
}

TEST_F(TraceTest, StartTimesAreCumulative)
{
    MachineSchedule schedule(machine_, {0, 1});
    schedule.addOneQLayer(2, 2);                 // 2 us
    schedule.addMoveBatch(batchOf({{1, 1, 4}})); // 30 us + move
    schedule.addRydberg({CzGate{0, 1}}, 0);      // 0.27 us

    const auto trace = traceSchedule(schedule);
    ASSERT_EQ(trace.instructions.size(), 3u);
    EXPECT_DOUBLE_EQ(trace.instructions[0].start.micros(), 0.0);
    EXPECT_DOUBLE_EQ(trace.instructions[0].duration.micros(), 2.0);
    EXPECT_DOUBLE_EQ(trace.instructions[1].start.micros(), 2.0);
    EXPECT_DOUBLE_EQ(trace.instructions[2].start.micros(),
                     2.0 + trace.instructions[1].duration.micros());
    EXPECT_DOUBLE_EQ(trace.total.micros(),
                     trace.instructions[2].start.micros() + 0.27);
    EXPECT_EQ(trace.instructions[0].kind, TraceKind::OneQ);
    EXPECT_EQ(trace.instructions[1].kind, TraceKind::Move);
    EXPECT_EQ(trace.instructions[2].kind, TraceKind::Rydberg);
}

TEST_F(TraceTest, MakespanMatchesEvaluator)
{
    const auto spec = findBenchmark("QSIM-rand-0.3-10");
    const Machine machine(spec.machine_config);
    const auto result = PowerMoveCompiler(machine).compile(spec.build());
    const auto trace = traceSchedule(result.schedule);
    EXPECT_NEAR(trace.total.micros(), result.metrics.exec_time.micros(),
                1e-6);
}

TEST_F(TraceTest, MoveDistanceAccumulates)
{
    MachineSchedule schedule(machine_, {0, 1});
    schedule.addMoveBatch(batchOf({{1, 1, 2}})); // 15 um
    AodBatch second;
    second.groups.push_back(CollMove{{{1, 2, 5}}}); // 15 um down
    schedule.addMoveBatch(second);
    const auto trace = traceSchedule(schedule);
    EXPECT_DOUBLE_EQ(trace.total_move_distance.microns(), 30.0);
    EXPECT_EQ(trace.max_batch_moves, 1u);
}

TEST_F(TraceTest, StorageDwellCreditsResidencyNotTransit)
{
    const SiteId slot = machine_.storageSites()[0];
    MachineSchedule schedule(machine_, {0, 1});
    schedule.addMoveBatch(batchOf({{0, 0, slot}})); // 0 moves to storage
    schedule.addOneQLayer(1, 1);                    // 1 us, 0 is stored

    const auto trace = traceSchedule(schedule);
    // Transit to storage is not credited; the 1Q layer afterwards is.
    EXPECT_DOUBLE_EQ(trace.storage_dwell[0].micros(), 1.0);
    EXPECT_DOUBLE_EQ(trace.storage_dwell[1].micros(), 0.0);
    EXPECT_GT(trace.storageUtilization(), 0.0);
}

TEST_F(TraceTest, LeavingStorageDropsTheTransitCredit)
{
    const SiteId slot = machine_.storageSites()[0];
    MachineSchedule schedule(machine_, {slot, 1});
    schedule.addMoveBatch(batchOf({{0, slot, 0}})); // 0 leaves storage
    const auto trace = traceSchedule(schedule);
    EXPECT_DOUBLE_EQ(trace.storage_dwell[0].micros(), 0.0);
}

TEST_F(TraceTest, StorageUtilizationHighForZonedCompilation)
{
    const auto spec = findBenchmark("QSIM-rand-0.3-10");
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();
    const auto with = PowerMoveCompiler(machine, {true, 1}).compile(circuit);
    const auto without =
        PowerMoveCompiler(machine, {false, 1}).compile(circuit);

    const auto trace_with = traceSchedule(with.schedule);
    const auto trace_without = traceSchedule(without.schedule);
    EXPECT_GT(trace_with.storageUtilization(), 0.5);
    EXPECT_DOUBLE_EQ(trace_without.storageUtilization(), 0.0);
    EXPECT_GT(trace_with.movementShare(), 0.5);
}

} // namespace
} // namespace powermove
