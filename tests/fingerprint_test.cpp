/** @file Tests for content-addressed job fingerprints. */

#include <gtest/gtest.h>

#include "service/fingerprint.hpp"

namespace powermove::service {
namespace {

TEST(Fnv1aTest, MatchesReferenceVectors)
{
    // Published FNV-1a 64-bit test vectors.
    EXPECT_EQ(Fnv1a().digest(), 0xcbf29ce484222325ULL);

    Fnv1a a;
    a.addBytes("a", 1);
    EXPECT_EQ(a.digest(), 0xaf63dc4c8601ec8cULL);

    Fnv1a foobar;
    foobar.addBytes("foobar", 6);
    EXPECT_EQ(foobar.digest(), 0x85944171f73967e8ULL);
}

TEST(Fnv1aTest, TypedFeedsAreCanonical)
{
    Fnv1a via_u64;
    via_u64.add(std::uint64_t{0x0102030405060708ULL});
    Fnv1a via_bytes;
    const unsigned char little_endian[8] = {8, 7, 6, 5, 4, 3, 2, 1};
    via_bytes.addBytes(little_endian, 8);
    EXPECT_EQ(via_u64.digest(), via_bytes.digest());
}

TEST(FingerprintTest, CircuitNameIsIgnored)
{
    Circuit a(4, "alpha");
    a.append(CzGate{0, 1});
    Circuit b(4, "beta");
    b.append(CzGate{0, 1});
    EXPECT_EQ(fingerprintCircuit(a), fingerprintCircuit(b));
}

TEST(FingerprintTest, CircuitContentIsAddressed)
{
    Circuit base(4);
    base.append(CzGate{0, 1});
    base.append(CzGate{2, 3});

    Circuit reordered(4);
    reordered.append(CzGate{2, 3});
    reordered.append(CzGate{0, 1});
    EXPECT_NE(fingerprintCircuit(base), fingerprintCircuit(reordered));

    Circuit extended = base;
    extended.append(CzGate{1, 2});
    EXPECT_NE(fingerprintCircuit(base), fingerprintCircuit(extended));

    Circuit wider(5);
    wider.append(CzGate{0, 1});
    wider.append(CzGate{2, 3});
    EXPECT_NE(fingerprintCircuit(base), fingerprintCircuit(wider));
}

TEST(FingerprintTest, BarrierSplitsBlocksAndTheFingerprint)
{
    Circuit joined(4);
    joined.append(CzGate{0, 1});
    joined.append(CzGate{2, 3});

    Circuit split(4);
    split.append(CzGate{0, 1});
    split.barrier();
    split.append(CzGate{2, 3});
    EXPECT_NE(fingerprintCircuit(joined), fingerprintCircuit(split));
}

TEST(FingerprintTest, AngleOnlyCountsWhenTheKindHasOne)
{
    Circuit h_zero(2);
    h_zero.append(OneQGate{OneQKind::H, 0, 0.0});
    Circuit h_stale(2);
    h_stale.append(OneQGate{OneQKind::H, 0, 1.25}); // stale payload
    EXPECT_EQ(fingerprintCircuit(h_zero), fingerprintCircuit(h_stale));

    Circuit rz_a(2);
    rz_a.append(OneQGate{OneQKind::Rz, 0, 0.5});
    Circuit rz_b(2);
    rz_b.append(OneQGate{OneQKind::Rz, 0, 0.75});
    EXPECT_NE(fingerprintCircuit(rz_a), fingerprintCircuit(rz_b));
}

TEST(FingerprintTest, MachineConfigFieldsAreAddressed)
{
    const MachineConfig base = MachineConfig::forQubits(16);
    EXPECT_EQ(fingerprintMachineConfig(base), fingerprintMachineConfig(base));

    MachineConfig gap = base;
    gap.gap_rows += 1;
    EXPECT_NE(fingerprintMachineConfig(base), fingerprintMachineConfig(gap));

    MachineConfig params = base;
    params.params.f_cz = 0.99;
    EXPECT_NE(fingerprintMachineConfig(base),
              fingerprintMachineConfig(params));
}

TEST(FingerprintTest, OptionFieldsAreAddressed)
{
    const CompilerOptions base;
    EXPECT_EQ(fingerprintOptions(base), fingerprintOptions(base));

    CompilerOptions storage = base;
    storage.use_storage = false;
    EXPECT_NE(fingerprintOptions(base), fingerprintOptions(storage));

    CompilerOptions aods = base;
    aods.num_aods = 2;
    EXPECT_NE(fingerprintOptions(base), fingerprintOptions(aods));

    CompilerOptions seed = base;
    seed.seed += 1;
    EXPECT_NE(fingerprintOptions(base), fingerprintOptions(seed));

    CompilerOptions policy = base;
    policy.aod_batch_policy = AodBatchPolicy::DurationBalanced;
    EXPECT_NE(fingerprintOptions(base), fingerprintOptions(policy));

    CompilerOptions alpha = base;
    alpha.stage_order_alpha = 0.25;
    EXPECT_NE(fingerprintOptions(base), fingerprintOptions(alpha));

    CompilerOptions placement = base;
    placement.placement = PlacementStrategy::ColumnInterleaved;
    EXPECT_NE(fingerprintOptions(base), fingerprintOptions(placement));

    CompilerOptions routing_aware = base;
    routing_aware.placement = PlacementStrategy::RoutingAware;
    EXPECT_NE(fingerprintOptions(base), fingerprintOptions(routing_aware));
    EXPECT_NE(fingerprintOptions(placement),
              fingerprintOptions(routing_aware));

    CompilerOptions refine = base;
    refine.placement_refine_iters += 1;
    EXPECT_NE(fingerprintOptions(base), fingerprintOptions(refine));

    CompilerOptions coloring_partition = base;
    coloring_partition.stage_partition = StagePartitionStrategy::Coloring;
    EXPECT_NE(fingerprintOptions(base),
              fingerprintOptions(coloring_partition));

    CompilerOptions balanced_partition = base;
    balanced_partition.stage_partition = StagePartitionStrategy::Balanced;
    EXPECT_NE(fingerprintOptions(base),
              fingerprintOptions(balanced_partition));
    EXPECT_NE(fingerprintOptions(coloring_partition),
              fingerprintOptions(balanced_partition));

    CompilerOptions stage_order = base;
    stage_order.stage_order = StageOrderStrategy::AsPartitioned;
    EXPECT_NE(fingerprintOptions(base), fingerprintOptions(stage_order));

    CompilerOptions cm_order = base;
    cm_order.coll_move_order = CollMoveOrderStrategy::AsGrouped;
    EXPECT_NE(fingerprintOptions(base), fingerprintOptions(cm_order));

    CompilerOptions routing = base;
    routing.routing = RoutingStrategy::Reuse;
    EXPECT_NE(fingerprintOptions(base), fingerprintOptions(routing));

    CompilerOptions lookahead = base;
    lookahead.reuse_lookahead += 1;
    EXPECT_NE(fingerprintOptions(base), fingerprintOptions(lookahead));

    CompilerOptions lru = base;
    lru.residency = ResidencyPolicy::Lru;
    EXPECT_NE(fingerprintOptions(base), fingerprintOptions(lru));

    CompilerOptions lti = base;
    lti.residency = ResidencyPolicy::Lti;
    EXPECT_NE(fingerprintOptions(base), fingerprintOptions(lti));
    EXPECT_NE(fingerprintOptions(lru), fingerprintOptions(lti));

    CompilerOptions fidelity = base;
    fidelity.residency = ResidencyPolicy::Fidelity;
    EXPECT_NE(fingerprintOptions(base), fingerprintOptions(fidelity));
    EXPECT_NE(fingerprintOptions(lti), fingerprintOptions(fidelity));

    CompilerOptions fast_routing = base;
    fast_routing.routing = RoutingStrategy::Fast;
    EXPECT_NE(fingerprintOptions(base), fingerprintOptions(fast_routing));
    EXPECT_NE(fingerprintOptions(routing), fingerprintOptions(fast_routing));

    CompilerOptions windowed_routing = base;
    windowed_routing.routing = RoutingStrategy::Windowed;
    EXPECT_NE(fingerprintOptions(base), fingerprintOptions(windowed_routing));
    EXPECT_NE(fingerprintOptions(fast_routing),
              fingerprintOptions(windowed_routing));

    CompilerOptions window = base;
    window.routing_window += 1;
    EXPECT_NE(fingerprintOptions(base), fingerprintOptions(window));

    CompilerOptions profiling = base;
    profiling.profile_passes = false;
    EXPECT_NE(fingerprintOptions(base), fingerprintOptions(profiling));
}

/**
 * Completeness guard (with the sizeof static_assert in fingerprint.cpp):
 * the structured binding below names every CompilerOptions field, so
 * adding a field breaks this test at compile time until both this probe
 * and fingerprintOptions() are extended. The strategy enums above each
 * get a distinctness check; a field that compiles but is not hashed
 * would poison the service cache silently. The probe is the *only*
 * compile-time guard when a one-byte field lands in struct padding (as
 * stage_partition did — sizeof stayed 56 on LP64).
 */
TEST(FingerprintTest, OptionFieldCountProbe)
{
    const CompilerOptions options;
    const auto &[use_storage, num_aods, stage_order_alpha, seed, placement,
                 placement_refine_iters, stage_partition, stage_order,
                 coll_move_order, aod_batch_policy, routing, reuse_lookahead,
                 residency, routing_window, profile_passes] = options;
    EXPECT_EQ(use_storage, options.use_storage);
    EXPECT_EQ(num_aods, options.num_aods);
    EXPECT_EQ(stage_order_alpha, options.stage_order_alpha);
    EXPECT_EQ(seed, options.seed);
    EXPECT_EQ(placement, options.placement);
    EXPECT_EQ(placement_refine_iters, options.placement_refine_iters);
    EXPECT_EQ(stage_partition, options.stage_partition);
    EXPECT_EQ(stage_order, options.stage_order);
    EXPECT_EQ(coll_move_order, options.coll_move_order);
    EXPECT_EQ(aod_batch_policy, options.aod_batch_policy);
    EXPECT_EQ(routing, options.routing);
    EXPECT_EQ(reuse_lookahead, options.reuse_lookahead);
    EXPECT_EQ(residency, options.residency);
    EXPECT_EQ(routing_window, options.routing_window);
    EXPECT_EQ(profile_passes, options.profile_passes);
}

TEST(FingerprintTest, JobFingerprintCombinesAllThreeParts)
{
    Circuit circuit(4);
    circuit.append(CzGate{0, 1});
    const MachineConfig config = MachineConfig::forQubits(4);
    const CompilerOptions options;

    const auto base = fingerprintJob(circuit, config, options);
    EXPECT_EQ(base, fingerprintJob(circuit, config, options));

    CompilerOptions other_options = options;
    other_options.num_aods = 3;
    EXPECT_NE(base, fingerprintJob(circuit, config, other_options));

    MachineConfig other_config = config;
    other_config.storage_rows += 1;
    EXPECT_NE(base, fingerprintJob(circuit, other_config, options));
}

/**
 * Schedule-neutral options must not reach the derived seed: profiling
 * never changes the emitted schedule, and the fast routing path is
 * bit-identical to the reference router at equal seeds — so both
 * normalize away in seedFingerprintJob() while still addressing
 * distinct cache entries via fingerprintJob(). This is what makes
 * `--routing=fast` reproduce `--routing=continuous` byte for byte all
 * the way through the service (the CLI e2e job cmp's the ISA JSON).
 */
TEST(FingerprintTest, ScheduleNeutralOptionsShareTheSeedFingerprint)
{
    Circuit circuit(4);
    circuit.append(CzGate{0, 1});
    circuit.append(CzGate{2, 3});
    const MachineConfig config = MachineConfig::forQubits(4);
    const CompilerOptions continuous;

    CompilerOptions fast = continuous;
    fast.routing = RoutingStrategy::Fast;
    EXPECT_EQ(seedFingerprintJob(circuit, config, continuous),
              seedFingerprintJob(circuit, config, fast));
    EXPECT_NE(fingerprintJob(circuit, config, continuous),
              fingerprintJob(circuit, config, fast));

    CompilerOptions profiled = continuous;
    profiled.profile_passes = !profiled.profile_passes;
    EXPECT_EQ(seedFingerprintJob(circuit, config, continuous),
              seedFingerprintJob(circuit, config, profiled));

    // Strategies that genuinely change the schedule keep their own
    // randomized-decision streams.
    CompilerOptions reuse = continuous;
    reuse.routing = RoutingStrategy::Reuse;
    EXPECT_NE(seedFingerprintJob(circuit, config, continuous),
              seedFingerprintJob(circuit, config, reuse));
    CompilerOptions windowed = continuous;
    windowed.routing = RoutingStrategy::Windowed;
    EXPECT_NE(seedFingerprintJob(circuit, config, continuous),
              seedFingerprintJob(circuit, config, windowed));
    // The residency policy changes which qubits hold and therefore the
    // schedule, so it participates in seed derivation too.
    CompilerOptions lti_reuse = continuous;
    lti_reuse.routing = RoutingStrategy::Reuse;
    lti_reuse.residency = ResidencyPolicy::Lti;
    EXPECT_NE(seedFingerprintJob(circuit, config, reuse),
              seedFingerprintJob(circuit, config, lti_reuse));
}

TEST(FingerprintTest, DerivedSeedsAreDeterministicAndDecorrelated)
{
    const auto a = deriveJobSeed(42, 0x1111);
    EXPECT_EQ(a, deriveJobSeed(42, 0x1111));
    EXPECT_NE(a, deriveJobSeed(42, 0x2222));
    EXPECT_NE(a, deriveJobSeed(43, 0x1111));
    EXPECT_NE(a, 42u);
}

} // namespace
} // namespace powermove::service
