/** @file Tests for the report tables. */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "report/table.hpp"

namespace powermove {
namespace {

TEST(TextTableTest, RendersAlignedColumns)
{
    TextTable table({"Benchmark", "Fidelity"});
    table.addRow({"BV-70", "0.75"});
    table.addRow({"QFT-29", "5.78e-04"});
    const auto text = table.toString();
    EXPECT_NE(text.find("Benchmark"), std::string::npos);
    EXPECT_NE(text.find("BV-70"), std::string::npos);
    EXPECT_NE(text.find("5.78e-04"), std::string::npos);
    // Header rule present.
    EXPECT_NE(text.find("----"), std::string::npos);
    // Every line has equal or shorter length than the rule line.
    EXPECT_EQ(table.numRows(), 2u);
    EXPECT_EQ(table.numColumns(), 2u);
}

TEST(TextTableTest, ColumnsPadToWidestCell)
{
    TextTable table({"A", "B"});
    table.addRow({"very-long-cell", "x"});
    const auto text = table.toString();
    // The header line must be padded past the long cell.
    const auto header_end = text.find('\n');
    EXPECT_GE(header_end, std::string{"very-long-cell  x"}.size());
}

TEST(TextTableTest, RowWidthMismatchRejected)
{
    TextTable table({"A", "B"});
    EXPECT_THROW(table.addRow({"only-one"}), ConfigError);
    EXPECT_THROW(table.addRow({"1", "2", "3"}), ConfigError);
}

TEST(TextTableTest, EmptyHeaderRejected)
{
    EXPECT_THROW(TextTable{{}}, InternalError);
}

TEST(TextTableTest, CsvOutput)
{
    TextTable table({"name", "value"});
    table.addRow({"plain", "1"});
    table.addRow({"with,comma", "2"});
    table.addRow({"with\"quote", "3"});
    const auto csv = table.toCsv();
    EXPECT_NE(csv.find("name,value\n"), std::string::npos);
    EXPECT_NE(csv.find("plain,1\n"), std::string::npos);
    EXPECT_NE(csv.find("\"with,comma\",2\n"), std::string::npos);
    EXPECT_NE(csv.find("\"with\"\"quote\",3\n"), std::string::npos);
}

TEST(TextTableTest, EmptyTableStillRendersHeader)
{
    TextTable table({"only"});
    EXPECT_NE(table.toString().find("only"), std::string::npos);
    EXPECT_EQ(table.toCsv(), "only\n");
}

} // namespace
} // namespace powermove
