/** @file Tests for the Table 2 benchmark generators. */

#include <gtest/gtest.h>

#include "circuit/stats.hpp"
#include "common/error.hpp"
#include "workloads/bv.hpp"
#include "workloads/qaoa.hpp"
#include "workloads/qft.hpp"
#include "workloads/qsim.hpp"
#include "workloads/suite.hpp"
#include "workloads/vqe.hpp"

namespace powermove {
namespace {

TEST(QaoaTest, RegularGraphGateCount)
{
    const Circuit circuit = makeQaoaRegular(30, 3, 1, 1);
    EXPECT_EQ(circuit.numQubits(), 30u);
    EXPECT_EQ(circuit.numCzGates(), 45u); // n*d/2 edges
    EXPECT_EQ(circuit.numBlocks(), 1u);
    // Initial H layer + mixer layer.
    EXPECT_EQ(circuit.numOneQGates(), 60u);
    EXPECT_EQ(circuit.name(), "QAOA-regular3-30");
}

TEST(QaoaTest, MultipleRoundsMultiplyBlocks)
{
    const Circuit circuit = makeQaoaRegular(20, 4, 3, 2);
    EXPECT_EQ(circuit.numBlocks(), 3u);
    EXPECT_EQ(circuit.numCzGates(), 3u * 40u);
}

TEST(QaoaTest, RandomFlavorUsesGnp)
{
    const Circuit circuit = makeQaoaRandom(20, 0.5, 1, 3);
    const double expected = 0.5 * (20.0 * 19.0 / 2.0);
    EXPECT_NEAR(static_cast<double>(circuit.numCzGates()), expected,
                expected * 0.35);
    EXPECT_EQ(circuit.name(), "QAOA-random-20");
}

TEST(QaoaTest, DeterministicPerSeed)
{
    const Circuit a = makeQaoaRegular(30, 3, 1, 42);
    const Circuit b = makeQaoaRegular(30, 3, 1, 42);
    EXPECT_EQ(a.blocks()[0]->gates, b.blocks()[0]->gates);
}

TEST(QftTest, GateCountsAndBlockStructure)
{
    const Circuit circuit = makeQft(18);
    EXPECT_EQ(circuit.numCzGates(), 18u * 17u / 2u);
    // One block per target qubit except the last (which has no CPs).
    EXPECT_EQ(circuit.numBlocks(), 17u);
    // Each block k holds n-1-k gates, all sharing qubit k.
    const auto blocks = circuit.blocks();
    for (std::size_t k = 0; k < blocks.size(); ++k) {
        EXPECT_EQ(blocks[k]->gates.size(), 17u - k);
        for (const auto &gate : blocks[k]->gates)
            EXPECT_TRUE(gate.touches(static_cast<QubitId>(k)));
    }
    // Every stage of every block is a single gate: fully sequential.
    const auto stats = computeStats(circuit);
    EXPECT_EQ(stats.stage_lower_bound, circuit.numCzGates());
}

TEST(BvTest, SecretControlsGateCount)
{
    const std::vector<bool> secret = {true, false, true, true, false};
    const Circuit circuit = makeBvWithSecret(6, secret);
    EXPECT_EQ(circuit.numCzGates(), 3u);
    EXPECT_EQ(circuit.numBlocks(), 1u);
    // Every oracle gate touches the ancilla (qubit n-1).
    for (const auto &gate : circuit.blocks()[0]->gates)
        EXPECT_TRUE(gate.touches(5));
}

TEST(BvTest, RandomSecretHasEvenWeight)
{
    const Circuit circuit = makeBv(70, 9);
    EXPECT_EQ(circuit.numCzGates(), 34u); // floor(69/2)
    const Circuit small = makeBv(14, 9);
    EXPECT_EQ(small.numCzGates(), 6u); // floor(13/2)
}

TEST(BvTest, ValidatesArguments)
{
    EXPECT_THROW(makeBv(1, 0), ConfigError);
    EXPECT_THROW(makeBvWithSecret(4, {true}), ConfigError);
}

TEST(VqeTest, LinearAnsatzGateCount)
{
    const Circuit circuit = makeVqe(30, 1, VqeEntanglement::Linear, 1);
    EXPECT_EQ(circuit.numCzGates(), 29u);
    EXPECT_EQ(circuit.numBlocks(), 1u);
    // RY layers before and after the entangler.
    EXPECT_EQ(circuit.numOneQGates(), 60u);
}

TEST(VqeTest, FullAnsatzGateCount)
{
    const Circuit circuit = makeVqe(10, 1, VqeEntanglement::Full, 1);
    EXPECT_EQ(circuit.numCzGates(), 45u);
}

TEST(VqeTest, RepsMultiplyEntanglers)
{
    const Circuit circuit = makeVqe(10, 3, VqeEntanglement::Linear, 1);
    EXPECT_EQ(circuit.numCzGates(), 27u);
    EXPECT_EQ(circuit.numBlocks(), 3u);
    EXPECT_EQ(circuit.numOneQGates(), 40u); // 4 RY layers
}

TEST(QsimTest, LaddersProduceSequentialBlocks)
{
    const Circuit circuit = makeQsim(10, 0.3, 10, 4);
    EXPECT_GT(circuit.numCzGates(), 0u);
    // Ladder CZs are separated by basis-change layers: every block has
    // exactly one gate, so the stage bound equals the gate count.
    const auto stats = computeStats(circuit);
    EXPECT_EQ(stats.stage_lower_bound, circuit.numCzGates());
    EXPECT_EQ(stats.max_block_gates, 1u);
    // Each string contributes an even number of episodes (down + up).
    EXPECT_EQ(circuit.numCzGates() % 2, 0u);
}

TEST(QsimTest, SupportsAtLeastTwoQubitsPerString)
{
    // With a tiny probability, resampling must still terminate and give
    // >= 1 CZ (support >= 2) per string.
    const Circuit circuit = makeQsim(5, 0.05, 3, 8);
    EXPECT_GE(circuit.numCzGates(), 3u * 2u);
}

TEST(QsimTest, RejectsDegenerateWidth)
{
    EXPECT_THROW(makeQsim(1, 0.3, 10, 1), ConfigError);
}

TEST(SuiteTest, HasAll23PaperEntries)
{
    const auto suite = table2Suite();
    ASSERT_EQ(suite.size(), 23u);
    EXPECT_EQ(suite.front().name, "QAOA-regular3-30");
    EXPECT_EQ(suite.back().name, "QSIM-rand-0.3-40");
}

TEST(SuiteTest, MachineShapesMatchTable2)
{
    for (const auto &spec : table2Suite()) {
        const auto expected = MachineConfig::forQubits(spec.num_qubits);
        EXPECT_EQ(spec.machine_config.compute_cols, expected.compute_cols);
        EXPECT_EQ(spec.machine_config.storage_rows, expected.storage_rows);
    }
    EXPECT_EQ(findBenchmark("BV-14").machine_config.computeZoneExtent(),
              "60 x 60");
    EXPECT_EQ(findBenchmark("QAOA-regular3-100")
                  .machine_config.storageZoneExtent(),
              "150 x 300");
}

TEST(SuiteTest, BuildersProduceDeclaredWidths)
{
    for (const auto &spec : table2Suite()) {
        const Circuit circuit = spec.build();
        EXPECT_EQ(circuit.numQubits(), spec.num_qubits) << spec.name;
        EXPECT_GT(circuit.numCzGates(), 0u) << spec.name;
    }
}

TEST(SuiteTest, BuildersAreDeterministic)
{
    const auto spec = findBenchmark("QAOA-random-20");
    const Circuit a = spec.build();
    const Circuit b = spec.build();
    EXPECT_EQ(a.blocks()[0]->gates, b.blocks()[0]->gates);
}

TEST(SuiteTest, UnknownBenchmarkRejected)
{
    EXPECT_THROW(findBenchmark("QAOA-regular5-1000"), ConfigError);
    EXPECT_THROW(makeFamilyInstance("NoSuchFamily", 10).build(), ConfigError);
}

TEST(SuiteTest, FamilyInstancesScale)
{
    const auto spec = makeFamilyInstance("QFT", 10);
    EXPECT_EQ(spec.name, "QFT-10");
    EXPECT_EQ(spec.build().numCzGates(), 45u);
}

} // namespace
} // namespace powermove
