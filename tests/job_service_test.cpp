/**
 * @file
 * Tests for the async JobService: lifecycle timelines, priority
 * ordering, deadline expiry, admission control, sharding, the disk
 * tier, and determinism against the effectiveOptions() replay rule.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "compiler/powermove.hpp"
#include "isa/validator.hpp"
#include "service/disk_cache.hpp"
#include "service/fingerprint.hpp"
#include "service/job_service.hpp"

namespace powermove::service {
namespace {

namespace fs = std::filesystem;

/** A fresh empty directory under the system temp dir, removed on exit. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_(fs::temp_directory_path() /
                ("powermove_job_service_" + tag + "_" +
                 std::to_string(static_cast<unsigned long>(::getpid()))))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }

    ~TempDir() { fs::remove_all(path_); }

    std::string str() const { return path_.string(); }

  private:
    fs::path path_;
};

/** A small distinct job: a 4-qubit chain with @p variant CZ blocks. */
CompileJob
smallJob(std::size_t variant = 1)
{
    Circuit circuit(4);
    for (std::size_t i = 0; i < variant; ++i) {
        circuit.append(CzGate{0, 1});
        circuit.append(CzGate{2, 3});
        circuit.barrier();
        circuit.append(CzGate{1, 2});
        circuit.barrier();
    }
    return CompileJob{std::move(circuit), MachineConfig::forQubits(4), {}};
}

/** JobServiceOptions with just the geometry and cache capacity set. */
JobServiceOptions
shardOptions(std::size_t shards, std::size_t workers,
             std::size_t cache_capacity)
{
    JobServiceOptions options;
    options.num_shards = shards;
    options.workers_per_shard = workers;
    options.cache_capacity = cache_capacity;
    return options;
}

TEST(TimelineTest, RecordsAndQueriesTransitions)
{
    Timeline timeline;
    EXPECT_TRUE(timeline.events().empty());
    EXPECT_FALSE(timeline.finished());

    using Clock = std::chrono::steady_clock;
    const Clock::time_point base = Clock::now();
    timeline.record(JobState::Queued, base);
    timeline.record(JobState::Admitted, base + std::chrono::milliseconds(2));
    timeline.record(JobState::Running, base + std::chrono::milliseconds(5));
    timeline.record(JobState::Done, base + std::chrono::milliseconds(9));

    ASSERT_EQ(timeline.events().size(), 4u);
    EXPECT_EQ(timeline.current(), JobState::Done);
    EXPECT_TRUE(timeline.finished());

    EXPECT_DOUBLE_EQ(
        timeline.between(JobState::Admitted, JobState::Running).micros(),
        3000.0);
    EXPECT_DOUBLE_EQ(timeline.total().micros(), 9000.0);

    EXPECT_EQ(jobStateName(JobState::Queued), "queued");
    EXPECT_EQ(jobStateName(JobState::Rejected), "rejected");
    EXPECT_FALSE(jobStateIsTerminal(JobState::Running));
    EXPECT_TRUE(jobStateIsTerminal(JobState::Expired));
}

TEST(JobServiceTest, SubmitReturnsIdAndTracksLifecycle)
{
    JobService svc(shardOptions(2, 1, 16));
    const CompileJob job = smallJob();
    JobTicket ticket = svc.submit(job);
    EXPECT_GT(ticket.id, 0u);

    const JobResult out = ticket.result.get();
    ASSERT_TRUE(out.result);
    EXPECT_EQ(out.source, ResultSource::Compiled);
    EXPECT_EQ(out.fingerprint, jobFingerprint(job));
    validateAgainstCircuit(out.result->schedule, job.circuit);

    const auto status = svc.status(ticket.id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->id, ticket.id);
    EXPECT_EQ(status->fingerprint, jobFingerprint(job));
    EXPECT_EQ(status->state, JobState::Done);
    EXPECT_TRUE(status->error.empty());

    // The timeline walked Queued → Admitted → Running → Done, in order.
    const auto &events = status->timeline.events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].state, JobState::Queued);
    EXPECT_EQ(events[1].state, JobState::Admitted);
    EXPECT_EQ(events[2].state, JobState::Running);
    EXPECT_EQ(events[3].state, JobState::Done);
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_GE(events[i].at.time_since_epoch().count(),
                  events[i - 1].at.time_since_epoch().count());

    EXPECT_FALSE(svc.status(ticket.id + 1000).has_value());
}

TEST(JobServiceTest, MemoryHitResolvesAtSubmitAsCached)
{
    JobService svc(shardOptions(1, 1, 16));
    const CompileJob job = smallJob();
    (void)svc.submit(job).result.get();

    JobTicket second = svc.submit(job);
    const JobResult out = second.result.get();
    EXPECT_EQ(out.source, ResultSource::Memory);
    EXPECT_TRUE(out.from_cache);

    const auto status = svc.status(second.id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, JobState::Cached);
    // Queued → Cached, with no Admitted/Running detour.
    ASSERT_EQ(status->timeline.events().size(), 2u);

    const JobServiceStats stats = svc.stats();
    EXPECT_EQ(stats.submitted, 2u);
    EXPECT_EQ(stats.compiled, 1u);
    EXPECT_EQ(stats.memory_hits, 1u);
}

TEST(JobServiceTest, FailureIsRecordedWithItsMessage)
{
    JobService svc(shardOptions(1, 1, 16));
    CompileJob bad = smallJob();
    bad.options.num_aods = 0; // rejected by the compiler's constructor

    JobTicket ticket = svc.submit(bad);
    EXPECT_THROW(ticket.result.get(), ConfigError);

    const auto status = svc.status(ticket.id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, JobState::Failed);
    EXPECT_FALSE(status->error.empty());
    EXPECT_EQ(svc.stats().failed, 1u);
}

TEST(JobServiceTest, AdmissionControlRejectsBeyondMaxQueue)
{
    // One shard, one worker, and a queue bound of 1. Block the worker
    // with a stream of distinct jobs, then overfill the queue.
    JobServiceOptions options;
    options.num_shards = 1;
    options.workers_per_shard = 1;
    options.cache_capacity = 0; // no memory short-circuit
    options.max_queue = 1;

    JobService svc(options);
    std::vector<JobTicket> tickets;
    std::size_t rejected = 0;
    // With a bound of 1 and steady submission pressure, at least the
    // tail of this burst must be rejected: the worker cannot drain 24
    // distinct jobs before the last submissions arrive.
    for (std::size_t v = 1; v <= 24; ++v)
        tickets.push_back(svc.submit(smallJob(v)));
    for (JobTicket &ticket : tickets) {
        try {
            (void)ticket.result.get();
        } catch (const RejectedError &) {
            ++rejected;
            const auto status = svc.status(ticket.id);
            ASSERT_TRUE(status.has_value());
            EXPECT_EQ(status->state, JobState::Rejected);
            EXPECT_NE(status->error.find("queue full"), std::string::npos);
        }
    }
    EXPECT_GT(rejected, 0u);
    EXPECT_EQ(svc.stats().rejected, rejected);
    // Rejection is immediate — the future is already resolved at
    // submit() — and never wedges the service.
    svc.waitIdle();
}

TEST(JobServiceTest, HigherPriorityJobsRunFirst)
{
    // One worker; jam it with a decoy so the real submissions queue up,
    // then check completion order follows priority, not arrival.
    JobServiceOptions options;
    options.num_shards = 1;
    options.workers_per_shard = 1;
    options.cache_capacity = 0;

    for (int attempt = 0; attempt < 8; ++attempt) {
        JobService svc(options);
        (void)svc.submit(smallJob(12)); // decoy occupies the worker
        JobTicket low = svc.submit(smallJob(1), /*priority=*/-5);
        JobTicket high = svc.submit(smallJob(2), /*priority=*/5);
        svc.waitIdle();

        const auto low_status = svc.status(low.id);
        const auto high_status = svc.status(high.id);
        ASSERT_TRUE(low_status && high_status);
        ASSERT_EQ(low_status->state, JobState::Done);
        ASSERT_EQ(high_status->state, JobState::Done);

        // The worker may have popped the low-priority job before the
        // high one was even submitted; retry until the race lands the
        // intended way (the decoy makes that overwhelmingly likely).
        const auto high_done = high_status->timeline.events().back().at;
        const auto low_done = low_status->timeline.events().back().at;
        if (high_done <= low_done)
            return; // observed: high finished no later than low
    }
    FAIL() << "high-priority job never finished before the low one";
}

TEST(JobServiceTest, DuplicateSubmissionInheritsTheHigherPriority)
{
    JobServiceOptions options;
    options.num_shards = 1;
    options.workers_per_shard = 1;
    options.cache_capacity = 0;

    JobService svc(options);
    (void)svc.submit(smallJob(12)); // occupy the worker
    JobTicket first = svc.submit(smallJob(3), /*priority=*/-1);
    JobTicket boost = svc.submit(smallJob(3), /*priority=*/9);

    const JobResult a = first.result.get();
    const JobResult b = boost.result.get();
    // Both resolve from the same compilation: one Compiled, one
    // Coalesced, sharing the result object.
    EXPECT_EQ(a.result.get(), b.result.get());
    EXPECT_EQ(a.source, ResultSource::Compiled);
    EXPECT_EQ(b.source, ResultSource::Coalesced);
    EXPECT_EQ(svc.stats().coalesced, 1u);
    svc.waitIdle();
}

TEST(JobServiceTest, ExpiredDeadlineFailsWhileQueuedJobs)
{
    JobServiceOptions options;
    options.num_shards = 1;
    options.workers_per_shard = 1;
    options.cache_capacity = 0;

    JobService svc(options);
    (void)svc.submit(smallJob(10)); // keep the worker busy
    // An already-impossible deadline: expired the moment a worker looks.
    JobTicket doomed =
        svc.submit(smallJob(2), /*priority=*/0, /*deadline_ms=*/1e-6);
    EXPECT_THROW(doomed.result.get(), ExpiredError);

    const auto status = svc.status(doomed.id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, JobState::Expired);
    EXPECT_EQ(svc.stats().expired, 1u);
    svc.waitIdle();
}

TEST(JobServiceTest, GenerousDeadlineDoesNotExpire)
{
    JobService svc(shardOptions(2, 1, 16));
    JobTicket ticket =
        svc.submit(smallJob(), /*priority=*/0, /*deadline_ms=*/60000.0);
    const JobResult out = ticket.result.get();
    ASSERT_TRUE(out.result);
    EXPECT_EQ(svc.stats().expired, 0u);
}

TEST(JobServiceTest, ShardsPartitionJobsByFingerprint)
{
    JobServiceOptions options;
    options.num_shards = 4;
    options.workers_per_shard = 1;
    JobService svc(options);
    EXPECT_EQ(svc.options().num_shards, 4u);

    std::vector<JobTicket> tickets;
    for (std::size_t v = 1; v <= 12; ++v)
        tickets.push_back(svc.submit(smallJob(v)));
    for (JobTicket &ticket : tickets)
        EXPECT_TRUE(ticket.result.get().result != nullptr);

    const JobServiceStats stats = svc.stats();
    EXPECT_EQ(stats.submitted, 12u);
    EXPECT_EQ(stats.compiled, 12u);
    EXPECT_EQ(stats.queued, 0u);
}

TEST(JobServiceTest, DiskTierServesAcrossServiceInstances)
{
    const TempDir dir("disk_tier");
    JobServiceOptions options;
    options.num_shards = 2;
    options.workers_per_shard = 1;
    options.cache_dir = dir.str();

    std::string fresh_bytes;
    {
        JobService cold(options);
        fresh_bytes = serializeCompileResult(
            *cold.submit(smallJob()).result.get().result);
        EXPECT_EQ(cold.stats().disk.stores, 1u);
    }

    JobService warm(options);
    JobTicket ticket = warm.submit(smallJob());
    const JobResult out = ticket.result.get();
    EXPECT_EQ(out.source, ResultSource::Disk);
    EXPECT_TRUE(out.from_cache);
    EXPECT_EQ(serializeCompileResult(*out.result), fresh_bytes);

    const auto status = warm.status(ticket.id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, JobState::Cached);
    EXPECT_EQ(warm.stats().disk_hits, 1u);
    EXPECT_EQ(warm.stats().compiled, 0u);
}

TEST(JobServiceTest, ResultsMatchEffectiveOptionsReplay)
{
    // The determinism bar: whatever the shard/priority/cache path, the
    // service's schedule is byte-identical to a single-threaded direct
    // compile with effectiveOptions().
    JobServiceOptions options;
    options.num_shards = 3;
    options.workers_per_shard = 2;
    JobService svc(options);

    std::vector<CompileJob> jobs;
    for (std::size_t v = 1; v <= 6; ++v)
        jobs.push_back(smallJob(v));

    std::vector<JobTicket> tickets;
    for (std::size_t v = 0; v < jobs.size(); ++v)
        tickets.push_back(
            svc.submit(jobs[v], static_cast<int>(v % 3) - 1));

    for (std::size_t v = 0; v < jobs.size(); ++v) {
        const JobResult out = tickets[v].result.get();
        const Machine machine(jobs[v].machine);
        const PowerMoveCompiler direct(machine, effectiveOptions(jobs[v]));
        EXPECT_EQ(serializeResultWitness(*out.result),
                  serializeResultWitness(direct.compile(jobs[v].circuit)))
            << "job variant " << (v + 1);
    }
}

TEST(JobServiceTest, FinishedRecordPruningForgetsOldestFirst)
{
    JobServiceOptions options;
    options.num_shards = 1;
    options.workers_per_shard = 1;
    options.max_finished_records = 2;
    JobService svc(options);

    JobTicket a = svc.submit(smallJob(1));
    (void)a.result.get();
    JobTicket b = svc.submit(smallJob(2));
    (void)b.result.get();
    JobTicket c = svc.submit(smallJob(3));
    (void)c.result.get();
    svc.waitIdle();

    // Only the two most recently finished jobs remain queryable.
    EXPECT_FALSE(svc.status(a.id).has_value());
    EXPECT_TRUE(svc.status(b.id).has_value());
    EXPECT_TRUE(svc.status(c.id).has_value());
}

} // namespace
} // namespace powermove::service
