/** @file Tests for the schedule pretty-printer. */

#include <gtest/gtest.h>

#include "compiler/powermove.hpp"
#include "isa/printer.hpp"

namespace powermove {
namespace {

MachineSchedule
sampleSchedule(const Machine &machine)
{
    MachineSchedule schedule(machine, {0, 1, 2, 3});
    schedule.addOneQLayer(4, 1);
    AodBatch batch;
    batch.groups.push_back(CollMove{{{1, 1, 0}}});
    batch.groups.push_back(CollMove{{{3, 3, 2}}});
    schedule.addMoveBatch(batch);
    schedule.addRydberg({CzGate{0, 1}, CzGate{2, 3}}, 0);
    return schedule;
}

TEST(PrinterTest, MentionsEveryInstructionKind)
{
    const Machine machine(MachineConfig::forQubits(9));
    const auto text = formatSchedule(sampleSchedule(machine));
    EXPECT_NE(text.find("1q-layer"), std::string::npos);
    EXPECT_NE(text.find("move-batch"), std::string::npos);
    EXPECT_NE(text.find("rydberg"), std::string::npos);
    EXPECT_NE(text.find("aod0:"), std::string::npos);
    EXPECT_NE(text.find("aod1:"), std::string::npos);
    EXPECT_NE(text.find("(0,1)"), std::string::npos); // gate listing
}

TEST(PrinterTest, HeaderSummarizesCounts)
{
    const Machine machine(MachineConfig::forQubits(9));
    const auto text = formatSchedule(sampleSchedule(machine));
    EXPECT_NE(text.find("4 qubits"), std::string::npos);
    EXPECT_NE(text.find("3 instructions"), std::string::npos);
    EXPECT_NE(text.find("1 pulses"), std::string::npos);
    EXPECT_NE(text.find("2 moves"), std::string::npos);
}

TEST(PrinterTest, TruncationIsAnnounced)
{
    const Machine machine(MachineConfig::forQubits(9));
    const auto text = formatSchedule(sampleSchedule(machine), 1);
    EXPECT_NE(text.find("... (2 more)"), std::string::npos);
    EXPECT_EQ(text.find("rydberg"), std::string::npos);
}

TEST(PrinterTest, EmptySchedule)
{
    const Machine machine(MachineConfig::forQubits(4));
    MachineSchedule schedule(machine, {0});
    const auto text = formatSchedule(schedule);
    EXPECT_NE(text.find("0 instructions"), std::string::npos);
}

TEST(PrinterTest, EndToEndScheduleRenders)
{
    const Machine machine(MachineConfig::forQubits(6));
    Circuit circuit(6);
    circuit.append(CzGate{0, 1});
    circuit.append(CzGate{2, 3});
    const auto result = PowerMoveCompiler(machine).compile(circuit);
    const auto text = formatSchedule(result.schedule);
    EXPECT_NE(text.find("rydberg"), std::string::npos);
    EXPECT_NE(text.find("block=0"), std::string::npos);
}

} // namespace
} // namespace powermove
