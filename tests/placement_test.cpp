/** @file Tests for the Enola simulated-annealing placement. */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "enola/placement.hpp"
#include "workloads/qaoa.hpp"

namespace powermove {
namespace {

TEST(PlacementCostTest, SumsGateDistances)
{
    const Machine machine(MachineConfig::forQubits(9));
    Circuit circuit(3);
    circuit.append(CzGate{0, 1});
    circuit.append(CzGate{1, 2});
    // Homes on one row: 0 at (0,0), 1 at (1,0), 2 at (2,0).
    const std::vector<SiteId> home = {0, 1, 2};
    EXPECT_DOUBLE_EQ(placementCost(machine, circuit, home), 30.0);
}

TEST(AnnealPlacementTest, ProducesDistinctComputeHomes)
{
    const Machine machine(MachineConfig::forQubits(16));
    const Circuit circuit = makeQaoaRegular(16, 3, 1, 5);
    Rng rng(1);
    const auto home = annealPlacement(machine, circuit, rng);

    ASSERT_EQ(home.size(), 16u);
    for (const SiteId site : home)
        EXPECT_EQ(machine.zoneOf(site), ZoneKind::Compute);
    auto sorted = home;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end());
}

TEST(AnnealPlacementTest, ImprovesOnRowMajorCost)
{
    const Machine machine(MachineConfig::forQubits(30));
    const Circuit circuit = makeQaoaRegular(30, 3, 1, 7);
    std::vector<SiteId> row_major(30);
    for (QubitId q = 0; q < 30; ++q)
        row_major[q] = q;

    Rng rng(3);
    const auto annealed = annealPlacement(machine, circuit, rng);
    EXPECT_LT(placementCost(machine, circuit, annealed),
              placementCost(machine, circuit, row_major));
}

TEST(AnnealPlacementTest, ZeroIterationsKeepsRowMajor)
{
    const Machine machine(MachineConfig::forQubits(9));
    Circuit circuit(4);
    circuit.append(CzGate{0, 3});
    Rng rng(2);
    PlacementOptions options;
    options.iterations = 0;
    const auto home = annealPlacement(machine, circuit, rng, options);
    for (QubitId q = 0; q < 4; ++q)
        EXPECT_EQ(home[q], q);
}

TEST(AnnealPlacementTest, RejectsOversizedCircuit)
{
    const Machine machine(MachineConfig::forQubits(4));
    const Circuit circuit(9);
    Rng rng(2);
    EXPECT_THROW(annealPlacement(machine, circuit, rng), ConfigError);
}

TEST(AnnealPlacementTest, DeterministicForFixedSeed)
{
    const Machine machine(MachineConfig::forQubits(16));
    const Circuit circuit = makeQaoaRegular(16, 3, 1, 5);
    Rng rng_a(9);
    Rng rng_b(9);
    EXPECT_EQ(annealPlacement(machine, circuit, rng_a),
              annealPlacement(machine, circuit, rng_b));
}

} // namespace
} // namespace powermove
