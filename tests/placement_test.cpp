/** @file Tests for the Enola simulated-annealing placement and the
 * routing-aware placement subsystem (src/placement/). */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "compiler/powermove.hpp"
#include "enola/placement.hpp"
#include "isa/json.hpp"
#include "isa/validator.hpp"
#include "placement/cost_model.hpp"
#include "placement/interaction_graph.hpp"
#include "placement/routing_aware.hpp"
#include "workloads/qaoa.hpp"
#include "workloads/suite.hpp"

namespace powermove {
namespace {

TEST(PlacementCostTest, SumsGateDistances)
{
    const Machine machine(MachineConfig::forQubits(9));
    Circuit circuit(3);
    circuit.append(CzGate{0, 1});
    circuit.append(CzGate{1, 2});
    // Homes on one row: 0 at (0,0), 1 at (1,0), 2 at (2,0).
    const std::vector<SiteId> home = {0, 1, 2};
    EXPECT_DOUBLE_EQ(placementCost(machine, circuit, home), 30.0);
}

TEST(AnnealPlacementTest, ProducesDistinctComputeHomes)
{
    const Machine machine(MachineConfig::forQubits(16));
    const Circuit circuit = makeQaoaRegular(16, 3, 1, 5);
    Rng rng(1);
    const auto home = annealPlacement(machine, circuit, rng);

    ASSERT_EQ(home.size(), 16u);
    for (const SiteId site : home)
        EXPECT_EQ(machine.zoneOf(site), ZoneKind::Compute);
    auto sorted = home;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end());
}

TEST(AnnealPlacementTest, ImprovesOnRowMajorCost)
{
    const Machine machine(MachineConfig::forQubits(30));
    const Circuit circuit = makeQaoaRegular(30, 3, 1, 7);
    std::vector<SiteId> row_major(30);
    for (QubitId q = 0; q < 30; ++q)
        row_major[q] = q;

    Rng rng(3);
    const auto annealed = annealPlacement(machine, circuit, rng);
    EXPECT_LT(placementCost(machine, circuit, annealed),
              placementCost(machine, circuit, row_major));
}

TEST(AnnealPlacementTest, ZeroIterationsKeepsRowMajor)
{
    const Machine machine(MachineConfig::forQubits(9));
    Circuit circuit(4);
    circuit.append(CzGate{0, 3});
    Rng rng(2);
    PlacementOptions options;
    options.iterations = 0;
    const auto home = annealPlacement(machine, circuit, rng, options);
    for (QubitId q = 0; q < 4; ++q)
        EXPECT_EQ(home[q], q);
}

TEST(AnnealPlacementTest, RejectsOversizedCircuit)
{
    const Machine machine(MachineConfig::forQubits(4));
    const Circuit circuit(9);
    Rng rng(2);
    EXPECT_THROW(annealPlacement(machine, circuit, rng), ConfigError);
}

TEST(AnnealPlacementTest, DeterministicForFixedSeed)
{
    const Machine machine(MachineConfig::forQubits(16));
    const Circuit circuit = makeQaoaRegular(16, 3, 1, 5);
    Rng rng_a(9);
    Rng rng_b(9);
    EXPECT_EQ(annealPlacement(machine, circuit, rng_a),
              annealPlacement(machine, circuit, rng_b));
}

// ------------------------------------------------ routing-aware placement

TEST(InteractionGraphTest, AggregatesPairsAcrossGateOrder)
{
    Circuit circuit(4);
    circuit.append(CzGate{0, 1});
    circuit.append(CzGate{1, 0}); // same pair, reversed endpoints
    circuit.append(CzGate{2, 3});

    const InteractionGraph graph = InteractionGraph::build(circuit);
    ASSERT_EQ(graph.edges().size(), 2u);
    EXPECT_EQ(graph.edges()[0].a, 0u);
    EXPECT_EQ(graph.edges()[0].b, 1u);
    EXPECT_DOUBLE_EQ(graph.edges()[0].weight, 2.0);
    EXPECT_DOUBLE_EQ(graph.edges()[1].weight, 1.0);
    EXPECT_DOUBLE_EQ(graph.incidentWeight(1), 2.0);
}

TEST(InteractionGraphTest, LaterBlocksWeighLess)
{
    Circuit circuit(4);
    circuit.append(CzGate{0, 1}); // block 0: weight 1
    circuit.barrier();
    circuit.append(CzGate{2, 3}); // block 1: weight 1/2

    const InteractionGraph graph = InteractionGraph::build(circuit);
    ASSERT_EQ(graph.edges().size(), 2u);
    EXPECT_GT(graph.edges()[0].weight, graph.edges()[1].weight);
    EXPECT_DOUBLE_EQ(graph.edges()[1].weight, 0.5);
}

TEST(CostModelTest, SwapAndRelocateDeltasMatchRecomputation)
{
    const Machine machine(MachineConfig::forQubits(16));
    const Circuit circuit = makeQaoaRegular(16, 3, 1, 11);
    const InteractionGraph graph = InteractionGraph::build(circuit);
    const PlacementCostModel model(machine, ZoneKind::Storage);

    std::vector<std::uint32_t> slot_of(16);
    for (std::uint32_t q = 0; q < 16; ++q)
        slot_of[q] = q;
    const double before = model.weightedDistance(graph, slot_of);

    const double swap_delta = model.swapDelta(graph, slot_of, 2, 9);
    std::swap(slot_of[2], slot_of[9]);
    EXPECT_NEAR(model.weightedDistance(graph, slot_of), before + swap_delta,
                1e-9);

    const double mid = model.weightedDistance(graph, slot_of);
    const std::uint32_t free_slot = 20; // 16 qubits, 32 storage slots
    const double reloc_delta = model.relocateDelta(graph, slot_of, 5,
                                                   free_slot);
    slot_of[5] = free_slot;
    EXPECT_NEAR(model.weightedDistance(graph, slot_of), mid + reloc_delta,
                1e-9);
}

TEST(RoutingAwareTest, CzFreeCircuitReproducesRowMajor)
{
    const Machine machine(MachineConfig::forQubits(9));
    Circuit circuit(6);
    circuit.append(OneQGate{OneQKind::H, 0, 0.0});

    const auto assignment =
        routingAwareAssignment(machine, ZoneKind::Storage, circuit);
    const auto sites = machine.storageSites();
    for (QubitId q = 0; q < 6; ++q)
        EXPECT_EQ(assignment[q], sites[q]);
}

TEST(RoutingAwareTest, RefinementNeverIncreasesWeightedDistance)
{
    const Machine machine(MachineConfig::forQubits(30));
    const Circuit circuit = makeQaoaRegular(30, 3, 1, 7);
    RoutingAwarePlacementReport report;
    routingAwareAssignment(machine, ZoneKind::Storage, circuit, {}, &report);

    EXPECT_LE(report.refined_weighted_distance,
              report.initial_weighted_distance);
    double previous = report.initial_weighted_distance;
    ASSERT_FALSE(report.sweep_costs.empty());
    for (const double cost : report.sweep_costs) {
        EXPECT_LE(cost, previous);
        previous = cost;
    }
    EXPECT_DOUBLE_EQ(report.sweep_costs.back(),
                     report.refined_weighted_distance);
}

TEST(RoutingAwareTest, ZeroRefineItersKeepsGreedyLayout)
{
    const Machine machine(MachineConfig::forQubits(16));
    const Circuit circuit = makeQaoaRegular(16, 3, 1, 5);
    RoutingAwarePlacementOptions options;
    options.refine_iters = 0;
    RoutingAwarePlacementReport report;
    routingAwareAssignment(machine, ZoneKind::Storage, circuit, options,
                           &report);
    EXPECT_EQ(report.refine_sweeps, 0u);
    EXPECT_EQ(report.refine_moves, 0u);
    EXPECT_DOUBLE_EQ(report.refined_weighted_distance,
                     report.initial_weighted_distance);
}

TEST(RoutingAwareTest, ImprovesWeightedDistanceOverRowMajor)
{
    const Machine machine(MachineConfig::forQubits(30));
    const Circuit circuit = makeQaoaRegular(30, 3, 1, 9);
    const InteractionGraph graph = InteractionGraph::build(circuit);
    const PlacementCostModel model(machine, ZoneKind::Storage);

    std::vector<std::uint32_t> row_major(30);
    for (std::uint32_t q = 0; q < 30; ++q)
        row_major[q] = q;

    RoutingAwarePlacementReport report;
    routingAwareAssignment(machine, ZoneKind::Storage, circuit, {}, &report);
    EXPECT_LT(report.refined_weighted_distance,
              model.weightedDistance(graph, row_major));
}

TEST(RoutingAwareTest, AssignmentUsesDistinctZoneSites)
{
    const Machine machine(MachineConfig::forQubits(24));
    const Circuit circuit = makeQaoaRegular(24, 3, 1, 3);
    const auto assignment =
        routingAwareAssignment(machine, ZoneKind::Storage, circuit);

    ASSERT_EQ(assignment.size(), 24u);
    auto sorted = assignment;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end());
    for (const SiteId site : assignment)
        EXPECT_EQ(machine.zoneOf(site), ZoneKind::Storage);
}

TEST(RoutingAwareTest, RejectsOversizedCircuit)
{
    const Machine machine(MachineConfig::forQubits(4));
    const Circuit circuit(20);
    EXPECT_THROW(routingAwareAssignment(machine, ZoneKind::Compute, circuit),
                 ConfigError);
}

TEST(RoutingAwareTest, CompiledScheduleIsDeterministicForFixedSeed)
{
    const BenchmarkSpec spec = findBenchmark("QAOA-regular3-30");
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();
    CompilerOptions options;
    options.placement = PlacementStrategy::RoutingAware;
    options.seed = 99;

    const auto a = PowerMoveCompiler(machine, options).compile(circuit);
    const auto b = PowerMoveCompiler(machine, options).compile(circuit);
    EXPECT_EQ(scheduleToJson(a.schedule), scheduleToJson(b.schedule));
}

TEST(RoutingAwareTest, CompiledScheduleValidatesUnderBothRoutings)
{
    const BenchmarkSpec spec = findBenchmark("QAOA-regular4-30");
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();
    for (const RoutingStrategy routing :
         {RoutingStrategy::Continuous, RoutingStrategy::Reuse}) {
        CompilerOptions options;
        options.placement = PlacementStrategy::RoutingAware;
        options.routing = routing;
        const auto result =
            PowerMoveCompiler(machine, options).compile(circuit);
        EXPECT_NO_THROW(validateAgainstCircuit(result.schedule, circuit));
    }
}

TEST(RoutingAwareTest, DefaultOptionsStayBitIdenticalToRowMajor)
{
    // The default path must not change when the routing-aware method is
    // merely *available* (the pipeline_test legacy reference locks the
    // whole suite; this is the placement-local spot check).
    const BenchmarkSpec spec = findBenchmark("QSIM-rand-0.3-10");
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();

    const auto defaults = PowerMoveCompiler(machine, {}).compile(circuit);
    CompilerOptions explicit_row_major;
    explicit_row_major.placement = PlacementStrategy::RowMajor;
    const auto row_major =
        PowerMoveCompiler(machine, explicit_row_major).compile(circuit);
    EXPECT_EQ(scheduleToJson(defaults.schedule),
              scheduleToJson(row_major.schedule));
}

TEST(RoutingAwareTest, PlacementCountersReportRefinement)
{
    const BenchmarkSpec spec = findBenchmark("QAOA-regular3-30");
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();
    CompilerOptions options;
    options.placement = PlacementStrategy::RoutingAware;
    const auto result = PowerMoveCompiler(machine, options).compile(circuit);

    std::uint64_t initial = 0;
    std::uint64_t refined = 0;
    bool found_sweeps = false;
    for (const PassProfile &profile : result.pass_profiles) {
        if (profile.pass != PassId::Placement)
            continue;
        for (const PassCounter &counter : profile.counters) {
            if (counter.name == "initial_weighted_dist_x1000")
                initial = counter.value;
            if (counter.name == "refined_weighted_dist_x1000")
                refined = counter.value;
            if (counter.name == "refine_sweeps")
                found_sweeps = true;
        }
    }
    EXPECT_TRUE(found_sweeps);
    EXPECT_GT(initial, 0u);
    EXPECT_LE(refined, initial);
}

} // namespace
} // namespace powermove
