/**
 * @file
 * Tests for the trace collector's Chrome trace-event JSON and the
 * service-layer span stitching (appendJobTrace).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "compiler/profile.hpp"
#include "obs/trace.hpp"
#include "service/observe.hpp"
#include "service/timeline.hpp"

namespace powermove::service {
namespace {

using obs::TraceCollector;
using obs::TraceEvent;
using Clock = TraceCollector::Clock;

std::size_t
countOccurrences(const std::string &haystack, const std::string &needle)
{
    std::size_t count = 0;
    for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++count;
    return count;
}

TEST(TraceCollectorTest, RecordsCompleteAndInstantEvents)
{
    TraceCollector trace;
    const Clock::time_point base = Clock::now();
    trace.addComplete("phase", "job", 7, base,
                      base + std::chrono::microseconds(250),
                      {{"detail", "memory"}});
    trace.addInstant("done", "job", 7, base + std::chrono::microseconds(250));
    EXPECT_EQ(trace.size(), 2u);

    const std::string json = trace.toChromeTraceJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"phase\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"tid\":7"), std::string::npos);
    EXPECT_NE(json.find("\"detail\":\"memory\""), std::string::npos);
}

TEST(TraceCollectorTest, EventsAreSortedByTimestamp)
{
    TraceCollector trace;
    const Clock::time_point base = Clock::now();
    trace.addInstant("later", "job", 1,
                     base + std::chrono::microseconds(500));
    trace.addInstant("earlier", "job", 1, base);

    const std::string json = trace.toChromeTraceJson();
    const std::size_t earlier = json.find("\"earlier\"");
    const std::size_t later = json.find("\"later\"");
    ASSERT_NE(earlier, std::string::npos);
    ASSERT_NE(later, std::string::npos);
    EXPECT_LT(earlier, later);
}

TEST(TraceCollectorTest, TsOfMeasuresAgainstEpoch)
{
    TraceCollector trace;
    const Clock::time_point now = Clock::now();
    EXPECT_GE(trace.tsOf(now + std::chrono::microseconds(100)),
              trace.tsOf(now) + 99.0);
}

/** A finished compiled-job timeline with known spacing. */
Timeline
compiledTimeline(const Clock::time_point base)
{
    Timeline timeline;
    timeline.record(JobState::Queued, base);
    timeline.record(JobState::Admitted, base + std::chrono::microseconds(10));
    timeline.record(JobState::Running, base + std::chrono::microseconds(30));
    timeline.record(JobState::Done, base + std::chrono::microseconds(90));
    return timeline;
}

TEST(AppendJobTraceTest, StitchesLifecycleSpansAndTerminalMarker)
{
    TraceCollector trace;
    const Clock::time_point base = Clock::now();
    appendJobTrace(trace, 42, compiledTimeline(base), nullptr, "compiled");

    // Three non-terminal spans + one terminal instant.
    EXPECT_EQ(trace.size(), 4u);
    const std::string json = trace.toChromeTraceJson();
    EXPECT_NE(json.find("\"name\":\"queued\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"admitted\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"running\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"done\""), std::string::npos);
    EXPECT_NE(json.find("\"source\":\"compiled\""), std::string::npos);
    EXPECT_EQ(countOccurrences(json, "\"tid\":42"), 4u);
}

TEST(AppendJobTraceTest, EmptySourceOmitsTheSourceArg)
{
    TraceCollector trace;
    Timeline timeline;
    const Clock::time_point base = Clock::now();
    timeline.record(JobState::Queued, base);
    timeline.record(JobState::Rejected,
                    base + std::chrono::microseconds(5));
    appendJobTrace(trace, 3, timeline, nullptr, {});

    const std::string json = trace.toChromeTraceJson();
    EXPECT_NE(json.find("\"name\":\"rejected\""), std::string::npos);
    EXPECT_EQ(json.find("\"source\""), std::string::npos);
}

TEST(AppendJobTraceTest, CachedDetailAnnotatesTheSpan)
{
    TraceCollector trace;
    Timeline timeline;
    const Clock::time_point base = Clock::now();
    timeline.record(JobState::Queued, base);
    timeline.record(JobState::Cached, base + std::chrono::microseconds(2),
                    "memory");
    appendJobTrace(trace, 9, timeline, nullptr, "memory");

    const std::string json = trace.toChromeTraceJson();
    EXPECT_NE(json.find("\"detail\":\"memory\""), std::string::npos);
    EXPECT_NE(json.find("\"source\":\"memory\""), std::string::npos);
}

TEST(AppendJobTraceTest, PassSpansLaidOutSequentiallyInsideRunning)
{
    TraceCollector trace;
    const Clock::time_point base = Clock::now();
    const Timeline timeline = compiledTimeline(base);

    std::vector<PassProfile> passes;
    for (std::size_t p = 0; p < kNumPasses; ++p) {
        PassProfile profile;
        profile.pass = static_cast<PassId>(p);
        profile.wall_time = Duration::micros(10.0);
        profile.invocations = 1;
        passes.push_back(profile);
    }
    passes[0].counters.push_back({"sites_considered", 12});

    appendJobTrace(trace, 5, timeline, &passes, "compiled");

    // 4 lifecycle events + one span per pipeline pass.
    EXPECT_EQ(trace.size(), 4u + kNumPasses);
    const std::string json = trace.toChromeTraceJson();
    for (std::size_t p = 0; p < kNumPasses; ++p) {
        const std::string name(passName(static_cast<PassId>(p)));
        EXPECT_NE(json.find("\"name\":\"" + name + "\""),
                  std::string::npos)
            << name;
    }
    EXPECT_EQ(countOccurrences(json, "\"cat\":\"pass\""), kNumPasses);
    EXPECT_NE(json.find("\"offsets\":\"synthetic\""), std::string::npos);
    EXPECT_NE(json.find("\"sites_considered\":\"12\""), std::string::npos);
}

TEST(AppendJobTraceTest, DiskIoBecomesRealTimestampedSpans)
{
    TraceCollector trace;
    const Clock::time_point base = Clock::now();
    Timeline timeline;
    timeline.record(JobState::Queued, base);
    timeline.record(JobState::Admitted, base + std::chrono::microseconds(5));
    timeline.record(JobState::Cached, base + std::chrono::microseconds(40),
                    "disk");

    JobTraceIo io;
    io.read = true;
    io.read_start = base + std::chrono::microseconds(6);
    io.read_end = base + std::chrono::microseconds(20);
    io.read_hit = true;
    io.write = true;
    io.write_start = base + std::chrono::microseconds(21);
    io.write_end = base + std::chrono::microseconds(30);

    appendJobTrace(trace, 11, timeline, nullptr, "disk", &io);

    const std::string json = trace.toChromeTraceJson();
    EXPECT_NE(json.find("\"name\":\"disk-read\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"disk-write\""), std::string::npos);
    EXPECT_NE(json.find("\"hit\":\"true\""), std::string::npos);
    EXPECT_EQ(countOccurrences(json, "\"cat\":\"cache\""), 2u);
}

TEST(ObserveHelpersTest, TierAndPriorityNames)
{
    EXPECT_EQ(tierName(TierIndex::Coalesced), "coalesced");
    EXPECT_EQ(tierName(TierIndex::Memory), "memory");
    EXPECT_EQ(tierName(TierIndex::Disk), "disk");
    EXPECT_EQ(tierName(TierIndex::Miss), "miss");

    EXPECT_EQ(priorityClassIndex(-5), 0u);
    EXPECT_EQ(priorityClassIndex(0), 1u);
    EXPECT_EQ(priorityClassIndex(3), 2u);
    EXPECT_EQ(priorityClassName(-1), "low");
    EXPECT_EQ(priorityClassName(0), "normal");
    EXPECT_EQ(priorityClassName(2), "high");
}

} // namespace
} // namespace powermove::service
