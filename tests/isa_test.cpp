/** @file Tests for the machine schedule and the hardware validator. */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "isa/validator.hpp"

namespace powermove {
namespace {

class IsaTest : public ::testing::Test
{
  protected:
    IsaTest() : machine_(MachineConfig::forQubits(9)) {}

    /** One-group batch holding the given moves. */
    static AodBatch
    batchOf(std::vector<QubitMove> moves)
    {
        AodBatch batch;
        batch.groups.push_back(CollMove{std::move(moves)});
        return batch;
    }

    Machine machine_;
};

TEST_F(IsaTest, ScheduleCounters)
{
    MachineSchedule schedule(machine_, {0, 1, 2, 3});
    EXPECT_EQ(schedule.numQubits(), 4u);
    schedule.addOneQLayer(4, 1);
    schedule.addMoveBatch(batchOf({{1, 1, 0}}));
    schedule.addRydberg({CzGate{0, 1}}, 0);
    EXPECT_EQ(schedule.numOneQGates(), 4u);
    EXPECT_EQ(schedule.numQubitMoves(), 1u);
    EXPECT_EQ(schedule.numTransfers(), 2u);
    EXPECT_EQ(schedule.numMoveBatches(), 1u);
    EXPECT_EQ(schedule.numPulses(), 1u);
    EXPECT_EQ(schedule.numCzGates(), 1u);
    EXPECT_EQ(schedule.instructions().size(), 3u);
}

TEST_F(IsaTest, EmptyLayersAndBatchesDropped)
{
    MachineSchedule schedule(machine_, {0});
    schedule.addOneQLayer(0, 0);
    schedule.addMoveBatch(AodBatch{});
    EXPECT_TRUE(schedule.instructions().empty());
}

TEST_F(IsaTest, EmptyPulseRejected)
{
    MachineSchedule schedule(machine_, {0});
    EXPECT_THROW(schedule.addRydberg({}, 0), InternalError);
}

TEST_F(IsaTest, InitialSitesValidated)
{
    EXPECT_THROW(MachineSchedule(machine_, {9999}), InternalError);
}

TEST_F(IsaTest, ValidSimpleProgram)
{
    MachineSchedule schedule(machine_, {0, 1, 2, 3});
    schedule.addMoveBatch(batchOf({{1, 1, 0}})); // 1 joins 0
    schedule.addRydberg({CzGate{0, 1}}, 0);
    schedule.addMoveBatch(batchOf({{1, 0, 1}})); // and returns
    EXPECT_NO_THROW(validateSchedule(schedule));
}

TEST_F(IsaTest, DetectsWrongDepartureSite)
{
    MachineSchedule schedule(machine_, {0, 1});
    schedule.addMoveBatch(batchOf({{1, 2, 0}})); // qubit 1 is at 1, not 2
    EXPECT_THROW(validateSchedule(schedule), ValidationError);
}

TEST_F(IsaTest, DetectsDoubleMoveInOneBatch)
{
    MachineSchedule schedule(machine_, {0, 1});
    AodBatch batch;
    batch.groups.push_back(CollMove{{{1, 1, 2}}});
    batch.groups.push_back(CollMove{{{1, 2, 3}}});
    schedule.addMoveBatch(batch);
    EXPECT_THROW(validateSchedule(schedule), ValidationError);
}

TEST_F(IsaTest, DetectsAodConflictInsideGroup)
{
    // Sites 0 and 2 sit in one row; their moves swap x-order: crossing.
    MachineSchedule schedule(machine_, {0, 2});
    schedule.addMoveBatch(batchOf({{0, 0, 5}, {1, 2, 3}}));
    EXPECT_THROW(validateSchedule(schedule), ValidationError);
}

TEST_F(IsaTest, ConflictingGroupsMayShareOneBatch)
{
    // The same two moves are legal on *distinct* AODs of one batch.
    MachineSchedule schedule(machine_, {0, 2});
    AodBatch batch;
    batch.groups.push_back(CollMove{{{0, 0, 5}}});
    batch.groups.push_back(CollMove{{{1, 2, 3}}});
    schedule.addMoveBatch(batch);
    EXPECT_NO_THROW(validateSchedule(schedule));
}

TEST_F(IsaTest, DetectsSeparatedGatePair)
{
    MachineSchedule schedule(machine_, {0, 1});
    schedule.addRydberg({CzGate{0, 1}}, 0);
    EXPECT_THROW(validateSchedule(schedule), ValidationError);
}

TEST_F(IsaTest, DetectsGateInStorageZone)
{
    const SiteId storage = machine_.storageSites()[0];
    MachineSchedule schedule(machine_, {storage, 1});
    schedule.addMoveBatch(batchOf({{1, 1, storage}}));
    // Two qubits on one storage site is already a capacity violation,
    // and the gate would also fire outside the compute zone.
    schedule.addRydberg({CzGate{0, 1}}, 0);
    EXPECT_THROW(validateSchedule(schedule), ValidationError);
}

TEST_F(IsaTest, DetectsUnwantedCoLocation)
{
    // Qubits 2,3 share a site during a pulse without a scheduled gate.
    MachineSchedule schedule(machine_, {0, 1, 2, 3});
    schedule.addMoveBatch(batchOf({{1, 1, 0}}));
    schedule.addMoveBatch(batchOf({{3, 3, 2}}));
    schedule.addRydberg({CzGate{0, 1}}, 0);
    EXPECT_THROW(validateSchedule(schedule), ValidationError);
}

TEST_F(IsaTest, DetectsPulseTouchingQubitTwice)
{
    MachineSchedule schedule(machine_, {0, 0, 1});
    schedule.addRydberg({CzGate{0, 1}, CzGate{1, 2}}, 0);
    EXPECT_THROW(validateSchedule(schedule), ValidationError);
}

TEST_F(IsaTest, DetectsFinalCapacityViolation)
{
    // Three qubits stacked on one compute site at program end.
    MachineSchedule schedule(machine_, {0, 1, 2});
    schedule.addMoveBatch(batchOf({{1, 1, 0}}));
    AodBatch second;
    second.groups.push_back(CollMove{{{2, 2, 0}}});
    schedule.addMoveBatch(second);
    EXPECT_THROW(validateSchedule(schedule), ValidationError);
}

TEST_F(IsaTest, StorageCapacityOneEnforced)
{
    const auto storage = machine_.storageSites();
    MachineSchedule schedule(machine_, {0, 1});
    schedule.addMoveBatch(batchOf({{0, 0, storage[0]}}));
    AodBatch second;
    second.groups.push_back(CollMove{{{1, 1, storage[0]}}});
    schedule.addMoveBatch(second);
    EXPECT_THROW(validateSchedule(schedule), ValidationError);
}

TEST_F(IsaTest, ValidateAgainstCircuitAcceptsFaithfulSchedule)
{
    Circuit circuit(2);
    circuit.append(OneQGate{OneQKind::H, 0, 0.0});
    circuit.append(CzGate{0, 1});

    MachineSchedule schedule(machine_, {0, 1});
    schedule.addOneQLayer(1, 1);
    schedule.addMoveBatch(batchOf({{1, 1, 0}}));
    schedule.addRydberg({CzGate{0, 1}}, 0);
    EXPECT_NO_THROW(validateAgainstCircuit(schedule, circuit));
}

TEST_F(IsaTest, ValidateAgainstCircuitDetectsMissingGate)
{
    Circuit circuit(4);
    circuit.append(CzGate{0, 1});
    circuit.append(CzGate{2, 3});

    MachineSchedule schedule(machine_, {0, 1, 2, 3});
    schedule.addMoveBatch(batchOf({{1, 1, 0}}));
    schedule.addRydberg({CzGate{0, 1}}, 0); // drops gate (2,3)
    EXPECT_THROW(validateAgainstCircuit(schedule, circuit), ValidationError);
}

TEST_F(IsaTest, ValidateAgainstCircuitDetectsWrongGateMultiset)
{
    Circuit circuit(4);
    circuit.append(CzGate{0, 1});

    MachineSchedule schedule(machine_, {0, 1, 2, 3});
    schedule.addMoveBatch(batchOf({{3, 3, 2}}));
    schedule.addRydberg({CzGate{2, 3}}, 0); // executes a different gate
    EXPECT_THROW(validateAgainstCircuit(schedule, circuit), ValidationError);
}

TEST_F(IsaTest, ValidateAgainstCircuitDetectsOneQMismatch)
{
    Circuit circuit(2);
    circuit.append(OneQGate{OneQKind::H, 0, 0.0});
    circuit.append(OneQGate{OneQKind::H, 1, 0.0});
    circuit.append(CzGate{0, 1});

    MachineSchedule schedule(machine_, {0, 1});
    schedule.addOneQLayer(1, 1); // only one of the two H gates
    schedule.addMoveBatch(batchOf({{1, 1, 0}}));
    schedule.addRydberg({CzGate{0, 1}}, 0);
    EXPECT_THROW(validateAgainstCircuit(schedule, circuit), ValidationError);
}

TEST_F(IsaTest, ValidateAgainstCircuitDetectsBlockOrderViolation)
{
    Circuit circuit(4);
    circuit.append(CzGate{0, 1});
    circuit.append(OneQGate{OneQKind::H, 0, 0.0});
    circuit.append(CzGate{2, 3});

    MachineSchedule schedule(machine_, {0, 1, 2, 3});
    schedule.addOneQLayer(1, 1);
    schedule.addMoveBatch(batchOf({{3, 3, 2}}));
    schedule.addRydberg({CzGate{2, 3}}, 1); // block 1 first
    schedule.addMoveBatch(batchOf({{1, 1, 0}}));
    schedule.addRydberg({CzGate{0, 1}}, 0); // then block 0: out of order
    EXPECT_THROW(validateAgainstCircuit(schedule, circuit), ValidationError);
}

} // namespace
} // namespace powermove
