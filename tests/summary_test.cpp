/** @file Tests for the ratio summary aggregator. */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "report/summary.hpp"

namespace powermove {
namespace {

TEST(RatioSummaryTest, EmptySummary)
{
    const RatioSummary summary;
    EXPECT_TRUE(summary.empty());
    EXPECT_EQ(summary.count(), 0u);
    EXPECT_EQ(summary.toString(), "(no data)");
    EXPECT_THROW(summary.min(), InternalError);
    EXPECT_THROW(summary.geometricMean(), InternalError);
}

TEST(RatioSummaryTest, SingleValue)
{
    RatioSummary summary;
    summary.add(2.5);
    EXPECT_DOUBLE_EQ(summary.min(), 2.5);
    EXPECT_DOUBLE_EQ(summary.max(), 2.5);
    EXPECT_DOUBLE_EQ(summary.geometricMean(), 2.5);
    EXPECT_DOUBLE_EQ(summary.arithmeticMean(), 2.5);
}

TEST(RatioSummaryTest, MinMaxAndMeans)
{
    RatioSummary summary;
    summary.add(1.0);
    summary.add(4.0);
    summary.add(16.0);
    EXPECT_DOUBLE_EQ(summary.min(), 1.0);
    EXPECT_DOUBLE_EQ(summary.max(), 16.0);
    EXPECT_DOUBLE_EQ(summary.geometricMean(), 4.0);
    EXPECT_DOUBLE_EQ(summary.arithmeticMean(), 7.0);
    EXPECT_EQ(summary.count(), 3u);
}

TEST(RatioSummaryTest, GeometricMeanResistsOutliers)
{
    // One enormous improvement (QFT-29-style) should not dominate.
    RatioSummary summary;
    summary.add(1.5);
    summary.add(2.0);
    summary.add(1e6);
    EXPECT_LT(summary.geometricMean(), 200.0);
    EXPECT_GT(summary.arithmeticMean(), 3e5);
}

TEST(RatioSummaryTest, RejectsNonPositive)
{
    RatioSummary summary;
    EXPECT_THROW(summary.add(0.0), ConfigError);
    EXPECT_THROW(summary.add(-1.0), ConfigError);
}

TEST(RatioSummaryTest, ToStringMentionsAllStatistics)
{
    RatioSummary summary;
    summary.add(2.0);
    summary.add(8.0);
    const auto text = summary.toString();
    EXPECT_NE(text.find("2.00x"), std::string::npos);
    EXPECT_NE(text.find("8.00x"), std::string::npos);
    EXPECT_NE(text.find("geomean 4.00x"), std::string::npos);
    EXPECT_NE(text.find("mean 5.00x"), std::string::npos);
    EXPECT_NE(text.find("2 benchmarks"), std::string::npos);
}

TEST(PassProfileFormatTest, EmptyProfilesSayNoData)
{
    EXPECT_EQ(formatPassProfiles({}), "(no pass profiles)\n");
}

TEST(PassProfileFormatTest, TableListsPassesSharesAndCounters)
{
    PassProfile placement;
    placement.pass = PassId::Placement;
    placement.wall_time = Duration::micros(1.0);
    placement.invocations = 1;
    placement.counters = {{"qubits_placed", 30}};

    PassProfile routing;
    routing.pass = PassId::Routing;
    routing.wall_time = Duration::micros(3.0);
    routing.invocations = 5;

    const auto text = formatPassProfiles({placement, routing});
    EXPECT_NE(text.find("placement"), std::string::npos);
    EXPECT_NE(text.find("routing"), std::string::npos);
    EXPECT_NE(text.find("qubits_placed=30"), std::string::npos);
    EXPECT_NE(text.find("75%"), std::string::npos); // routing share of 4 us
    EXPECT_NE(text.find("25%"), std::string::npos);
}

} // namespace
} // namespace powermove
