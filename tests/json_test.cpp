/** @file Tests for JSON schedule serialization. */

#include <gtest/gtest.h>

#include "compiler/powermove.hpp"
#include "isa/json.hpp"

namespace powermove {
namespace {

TEST(JsonTest, EmptySchedule)
{
    const Machine machine(MachineConfig::forQubits(4));
    MachineSchedule schedule(machine, {0, 1});
    const auto json = scheduleToJson(schedule);
    EXPECT_NE(json.find("\"qubits\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"machine\""), std::string::npos);
    EXPECT_NE(json.find("\"instructions\": [\n\n  ]"), std::string::npos);
}

TEST(JsonTest, MachineShapeSerialized)
{
    const Machine machine(MachineConfig::forQubits(30));
    MachineSchedule schedule(machine, {0});
    const auto json = scheduleToJson(schedule);
    EXPECT_NE(json.find("\"compute\": [6,6]"), std::string::npos);
    EXPECT_NE(json.find("\"storage\": [6,12]"), std::string::npos);
    EXPECT_NE(json.find("\"gap_rows\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"pitch_um\": 15"), std::string::npos);
}

TEST(JsonTest, AllInstructionKindsSerialized)
{
    const Machine machine(MachineConfig::forQubits(9));
    MachineSchedule schedule(machine, {0, 1});
    schedule.addOneQLayer(2, 1);
    AodBatch batch;
    batch.groups.push_back(CollMove{{{1, 1, 0}}});
    schedule.addMoveBatch(batch);
    schedule.addRydberg({CzGate{0, 1}}, 3);

    const auto json = scheduleToJson(schedule);
    EXPECT_NE(json.find("{\"op\": \"1q\", \"gates\": 2, \"depth\": 1}"),
              std::string::npos);
    EXPECT_NE(json.find("\"op\": \"move\""), std::string::npos);
    EXPECT_NE(json.find("{\"q\": 1, \"from\": [1,0], \"to\": [0,0]}"),
              std::string::npos);
    EXPECT_NE(json.find("\"op\": \"rydberg\", \"block\": 3"),
              std::string::npos);
    EXPECT_NE(json.find("\"gates\": [[0,1]]"), std::string::npos);
}

TEST(JsonTest, BalancedBracesAndBrackets)
{
    const auto spec = Machine(MachineConfig::forQubits(9));
    Circuit circuit(9);
    circuit.append(CzGate{0, 5});
    circuit.append(CzGate{2, 7});
    const auto result = PowerMoveCompiler(spec).compile(circuit);
    const auto json = scheduleToJson(result.schedule);

    long braces = 0;
    long brackets = 0;
    for (const char c : json) {
        braces += (c == '{') - (c == '}');
        brackets += (c == '[') - (c == ']');
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
    EXPECT_EQ(json.back(), '\n');
}

TEST(JsonTest, InitialSitesListedPerQubit)
{
    const Machine machine(MachineConfig::forQubits(9));
    MachineSchedule schedule(machine, {0, 4, 8});
    const auto json = scheduleToJson(schedule);
    EXPECT_NE(json.find("\"initial_sites\": [[0,0],[1,1],[2,2]]"),
              std::string::npos);
}

} // namespace
} // namespace powermove
