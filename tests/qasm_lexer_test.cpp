/** @file Tests for the OpenQASM lexer. */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "qasm/lexer.hpp"

namespace powermove::qasm {
namespace {

std::vector<TokenKind>
kindsOf(std::string_view source)
{
    std::vector<TokenKind> kinds;
    for (const auto &token : tokenize(source))
        kinds.push_back(token.kind);
    return kinds;
}

TEST(LexerTest, EmptySourceYieldsEof)
{
    EXPECT_EQ(kindsOf(""), (std::vector<TokenKind>{TokenKind::EndOfFile}));
    EXPECT_EQ(kindsOf("   \n\t "),
              (std::vector<TokenKind>{TokenKind::EndOfFile}));
}

TEST(LexerTest, HeaderLine)
{
    EXPECT_EQ(kindsOf("OPENQASM 2.0;"),
              (std::vector<TokenKind>{TokenKind::KwOpenQasm, TokenKind::Real,
                                      TokenKind::Semicolon,
                                      TokenKind::EndOfFile}));
}

TEST(LexerTest, KeywordsRecognized)
{
    EXPECT_EQ(kindsOf("qreg creg gate measure barrier reset if pi include"),
              (std::vector<TokenKind>{
                  TokenKind::KwQreg, TokenKind::KwCreg, TokenKind::KwGate,
                  TokenKind::KwMeasure, TokenKind::KwBarrier,
                  TokenKind::KwReset, TokenKind::KwIf, TokenKind::KwPi,
                  TokenKind::KwInclude, TokenKind::EndOfFile}));
}

TEST(LexerTest, IdentifiersVsKeywords)
{
    const auto tokens = tokenize("qregx h_2 _tmp");
    EXPECT_EQ(tokens[0].kind, TokenKind::Identifier);
    EXPECT_EQ(tokens[0].text, "qregx");
    EXPECT_EQ(tokens[1].text, "h_2");
    EXPECT_EQ(tokens[2].text, "_tmp");
}

TEST(LexerTest, IntegerAndRealLiterals)
{
    const auto tokens = tokenize("42 3.14 1e-3 2.5E+2 .5");
    EXPECT_EQ(tokens[0].kind, TokenKind::Integer);
    EXPECT_DOUBLE_EQ(tokens[0].number, 42.0);
    EXPECT_EQ(tokens[1].kind, TokenKind::Real);
    EXPECT_DOUBLE_EQ(tokens[1].number, 3.14);
    EXPECT_EQ(tokens[2].kind, TokenKind::Real);
    EXPECT_DOUBLE_EQ(tokens[2].number, 1e-3);
    EXPECT_DOUBLE_EQ(tokens[3].number, 250.0);
    EXPECT_DOUBLE_EQ(tokens[4].number, 0.5);
}

TEST(LexerTest, PunctuationAndOperators)
{
    EXPECT_EQ(kindsOf("; , ( ) [ ] { } -> + - * / ^ =="),
              (std::vector<TokenKind>{
                  TokenKind::Semicolon, TokenKind::Comma, TokenKind::LParen,
                  TokenKind::RParen, TokenKind::LBracket, TokenKind::RBracket,
                  TokenKind::LBrace, TokenKind::RBrace, TokenKind::Arrow,
                  TokenKind::Plus, TokenKind::Minus, TokenKind::Star,
                  TokenKind::Slash, TokenKind::Caret, TokenKind::EqualEqual,
                  TokenKind::EndOfFile}));
}

TEST(LexerTest, ArrowVsMinus)
{
    const auto tokens = tokenize("a -> b - c");
    EXPECT_EQ(tokens[1].kind, TokenKind::Arrow);
    EXPECT_EQ(tokens[3].kind, TokenKind::Minus);
}

TEST(LexerTest, LineCommentsSkipped)
{
    EXPECT_EQ(kindsOf("// whole line\nh // trailing\n// eof"),
              (std::vector<TokenKind>{TokenKind::Identifier,
                                      TokenKind::EndOfFile}));
}

TEST(LexerTest, StringLiterals)
{
    const auto tokens = tokenize("include \"qelib1.inc\";");
    EXPECT_EQ(tokens[1].kind, TokenKind::String);
    EXPECT_EQ(tokens[1].text, "qelib1.inc");
}

TEST(LexerTest, PositionsAreOneBased)
{
    const auto tokens = tokenize("h q;\ncx a,b;");
    EXPECT_EQ(tokens[0].line, 1u);
    EXPECT_EQ(tokens[0].column, 1u);
    EXPECT_EQ(tokens[1].line, 1u);
    EXPECT_EQ(tokens[1].column, 3u);
    EXPECT_EQ(tokens[3].line, 2u); // "cx"
    EXPECT_EQ(tokens[3].column, 1u);
}

TEST(LexerTest, UnterminatedStringThrows)
{
    EXPECT_THROW(tokenize("include \"broken"), ParseError);
    EXPECT_THROW(tokenize("include \"broken\nx\""), ParseError);
}

TEST(LexerTest, StrayCharactersThrowWithPosition)
{
    try {
        tokenize("h q;\n  @");
        FAIL() << "expected ParseError";
    } catch (const ParseError &error) {
        EXPECT_EQ(error.line(), 2u);
        EXPECT_EQ(error.column(), 3u);
    }
}

TEST(LexerTest, MalformedExponentThrows)
{
    EXPECT_THROW(tokenize("1e"), ParseError);
    EXPECT_THROW(tokenize("2.5e+"), ParseError);
}

TEST(LexerTest, SingleEqualsThrows)
{
    EXPECT_THROW(tokenize("a = b"), ParseError);
}

} // namespace
} // namespace powermove::qasm
