/** @file Round-trip property tests: circuit -> QASM -> circuit. */

#include <gtest/gtest.h>

#include <variant>

#include "qasm/converter.hpp"
#include "qasm/writer.hpp"
#include "workloads/suite.hpp"

namespace powermove::qasm {
namespace {

/** Structural equality modulo gate angles' textual formatting. */
void
expectEquivalent(const Circuit &original, const Circuit &reparsed)
{
    ASSERT_EQ(reparsed.numQubits(), original.numQubits());
    ASSERT_EQ(reparsed.numOneQGates(), original.numOneQGates());
    ASSERT_EQ(reparsed.numCzGates(), original.numCzGates());
    ASSERT_EQ(reparsed.numBlocks(), original.numBlocks());
    ASSERT_EQ(reparsed.moments().size(), original.moments().size());

    for (std::size_t m = 0; m < original.moments().size(); ++m) {
        const auto &orig = original.moments()[m];
        const auto &back = reparsed.moments()[m];
        ASSERT_EQ(orig.index(), back.index()) << "moment " << m;
        if (const auto *block = std::get_if<CzBlock>(&orig)) {
            EXPECT_EQ(std::get<CzBlock>(back).gates, block->gates);
        } else {
            const auto &orig_layer = std::get<OneQLayer>(orig);
            const auto &back_layer = std::get<OneQLayer>(back);
            ASSERT_EQ(back_layer.gates.size(), orig_layer.gates.size());
            for (std::size_t g = 0; g < orig_layer.gates.size(); ++g) {
                EXPECT_EQ(back_layer.gates[g].kind, orig_layer.gates[g].kind);
                EXPECT_EQ(back_layer.gates[g].qubit,
                          orig_layer.gates[g].qubit);
                EXPECT_NEAR(back_layer.gates[g].angle,
                            orig_layer.gates[g].angle, 1e-9);
            }
        }
    }
}

TEST(WriterTest, EmitsHeaderAndRegister)
{
    Circuit circuit(3, "demo");
    circuit.append(CzGate{0, 2});
    const auto text = writeQasm(circuit);
    EXPECT_NE(text.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(text.find("qreg q[3];"), std::string::npos);
    EXPECT_NE(text.find("cz q[0],q[2];"), std::string::npos);
    EXPECT_NE(text.find("// demo"), std::string::npos);
}

TEST(WriterTest, EmitsBarrierBetweenAdjacentBlocks)
{
    Circuit circuit(4);
    circuit.append(CzGate{0, 1});
    circuit.barrier();
    circuit.append(CzGate{2, 3});
    const auto text = writeQasm(circuit);
    EXPECT_NE(text.find("barrier q;"), std::string::npos);
    const auto back = loadQasm(text).circuit;
    EXPECT_EQ(back.numBlocks(), 2u);
}

TEST(WriterTest, RotationAnglesSurvive)
{
    Circuit circuit(1);
    circuit.append(OneQGate{OneQKind::Rz, 0, 0.75});
    const auto back = loadQasm(writeQasm(circuit)).circuit;
    const auto &layer = std::get<OneQLayer>(back.moments().front());
    EXPECT_NEAR(layer.gates[0].angle, 0.75, 1e-9);
}

TEST(WriterTest, GenericUGateRoundTripsAsU3)
{
    Circuit circuit(1);
    circuit.append(OneQGate{OneQKind::U, 0, 1.25});
    const auto text = writeQasm(circuit);
    EXPECT_NE(text.find("u3(1.25,0,0)"), std::string::npos);
    const auto back = loadQasm(text).circuit;
    const auto &layer = std::get<OneQLayer>(back.moments().front());
    EXPECT_EQ(layer.gates[0].kind, OneQKind::U);
    EXPECT_NEAR(layer.gates[0].angle, 1.25, 1e-9);
}

/** Round-trip sweep over the whole benchmark suite. */
class RoundTripProperty : public ::testing::TestWithParam<std::string>
{};

TEST_P(RoundTripProperty, SuiteCircuitsSurviveRoundTrip)
{
    const auto spec = findBenchmark(GetParam());
    const Circuit original = spec.build();
    const auto reparsed = loadQasm(writeQasm(original)).circuit;
    expectEquivalent(original, reparsed);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, RoundTripProperty,
                         ::testing::Values("QAOA-regular3-30",
                                           "QAOA-regular4-40",
                                           "QAOA-random-20", "QFT-18", "BV-14",
                                           "BV-50", "VQE-30",
                                           "QSIM-rand-0.3-10",
                                           "QSIM-rand-0.3-20"));

TEST(RoundTripTest, DoubleRoundTripIsStable)
{
    const auto spec = findBenchmark("QFT-18");
    const Circuit original = spec.build();
    const auto once = loadQasm(writeQasm(original)).circuit;
    const auto twice = loadQasm(writeQasm(once)).circuit;
    expectEquivalent(once, twice);
}

} // namespace
} // namespace powermove::qasm
