/** @file Mutation testing of the hardware validator.
 *
 * Compiles valid programs, then applies targeted corruptions to the
 * schedule and asserts the validator rejects every one of them. This
 * pins down that the safety net the whole test suite leans on (schedule
 * validation) actually has teeth.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "compiler/powermove.hpp"
#include "isa/validator.hpp"
#include "workloads/suite.hpp"

namespace powermove {
namespace {

/** Rebuilds a schedule applying @p mutate to each instruction. */
template <typename MutateFn>
MachineSchedule
rebuild(const MachineSchedule &original, MutateFn &&mutate)
{
    MachineSchedule copy(original.machine(), original.initialSites());
    std::size_t index = 0;
    for (const auto &instruction : original.instructions()) {
        Instruction cloned = instruction;
        mutate(index, cloned);
        if (const auto *layer = std::get_if<OneQLayerOp>(&cloned))
            copy.addOneQLayer(layer->gate_count, layer->depth);
        else if (const auto *op = std::get_if<MoveBatchOp>(&cloned))
            copy.addMoveBatch(op->batch);
        else
            copy.addRydberg(std::get<RydbergOp>(cloned).gates,
                            std::get<RydbergOp>(cloned).block_index);
        ++index;
    }
    return copy;
}

class MutationTest : public ::testing::Test
{
  protected:
    MutationTest()
        : spec_(findBenchmark("QSIM-rand-0.3-10")),
          machine_(spec_.machine_config), circuit_(spec_.build()),
          result_(PowerMoveCompiler(machine_, {true, 1}).compile(circuit_))
    {}

    BenchmarkSpec spec_;
    Machine machine_;
    Circuit circuit_;
    CompileResult result_;
};

TEST_F(MutationTest, BaselineIsValid)
{
    EXPECT_NO_THROW(validateAgainstCircuit(result_.schedule, circuit_));
}

TEST_F(MutationTest, DroppingAMoveIsCaught)
{
    // Removing the first move of the first batch breaks a later "from".
    bool dropped = false;
    const auto mutated = rebuild(result_.schedule, [&](std::size_t,
                                                       Instruction &ins) {
        auto *op = std::get_if<MoveBatchOp>(&ins);
        if (op == nullptr || dropped)
            return;
        auto &moves = op->batch.groups.front().moves;
        if (!moves.empty()) {
            moves.erase(moves.begin());
            dropped = true;
        }
    });
    ASSERT_TRUE(dropped);
    EXPECT_THROW(validateSchedule(mutated), ValidationError);
}

TEST_F(MutationTest, RetargetingAMoveIsCaught)
{
    // Redirect one relocation to a far site: either a later departure
    // mismatches or a pulse loses co-location.
    bool changed = false;
    const auto mutated = rebuild(result_.schedule, [&](std::size_t,
                                                       Instruction &ins) {
        auto *op = std::get_if<MoveBatchOp>(&ins);
        if (op == nullptr || changed)
            return;
        auto &move = op->batch.groups.front().moves.front();
        move.to = move.to == 0 ? 1 : 0;
        changed = true;
    });
    ASSERT_TRUE(changed);
    EXPECT_THROW(validateAgainstCircuit(mutated, circuit_),
                 ValidationError);
}

TEST_F(MutationTest, DroppingAPulseIsCaught)
{
    MachineSchedule copy(machine_, result_.schedule.initialSites());
    bool skipped = false;
    for (const auto &instruction : result_.schedule.instructions()) {
        if (!skipped && std::holds_alternative<RydbergOp>(instruction)) {
            skipped = true;
            continue;
        }
        if (const auto *layer = std::get_if<OneQLayerOp>(&instruction))
            copy.addOneQLayer(layer->gate_count, layer->depth);
        else if (const auto *op = std::get_if<MoveBatchOp>(&instruction))
            copy.addMoveBatch(op->batch);
        else
            copy.addRydberg(std::get<RydbergOp>(instruction).gates,
                            std::get<RydbergOp>(instruction).block_index);
    }
    ASSERT_TRUE(skipped);
    EXPECT_THROW(validateAgainstCircuit(copy, circuit_), ValidationError);
}

TEST_F(MutationTest, SwappingPulseGateIsCaught)
{
    // Replace a pulse's gate with a different qubit pair.
    bool swapped = false;
    const auto mutated = rebuild(result_.schedule, [&](std::size_t,
                                                       Instruction &ins) {
        auto *pulse = std::get_if<RydbergOp>(&ins);
        if (pulse == nullptr || swapped)
            return;
        auto &gate = pulse->gates.front();
        gate = CzGate{gate.a,
                      static_cast<QubitId>((gate.b + 1) % 10) == gate.a
                          ? static_cast<QubitId>((gate.b + 2) % 10)
                          : static_cast<QubitId>((gate.b + 1) % 10)};
        swapped = true;
    });
    ASSERT_TRUE(swapped);
    EXPECT_THROW(validateAgainstCircuit(mutated, circuit_),
                 ValidationError);
}

TEST_F(MutationTest, CorruptingBlockIndexIsCaught)
{
    bool changed = false;
    const auto mutated = rebuild(result_.schedule, [&](std::size_t,
                                                       Instruction &ins) {
        auto *pulse = std::get_if<RydbergOp>(&ins);
        if (pulse == nullptr || changed)
            return;
        pulse->block_index += 1000;
        changed = true;
    });
    ASSERT_TRUE(changed);
    EXPECT_THROW(validateAgainstCircuit(mutated, circuit_),
                 ValidationError);
}

TEST_F(MutationTest, InflatingOneQCountIsCaught)
{
    const auto mutated = rebuild(result_.schedule,
                                 [&](std::size_t, Instruction &ins) {
                                     auto *layer =
                                         std::get_if<OneQLayerOp>(&ins);
                                     if (layer != nullptr)
                                         ++layer->gate_count;
                                 });
    EXPECT_THROW(validateAgainstCircuit(mutated, circuit_),
                 ValidationError);
}

TEST_F(MutationTest, WrongInitialSiteIsCaught)
{
    auto initial = result_.schedule.initialSites();
    // Move qubit 0's start somewhere else: the first departure of
    // qubit 0 will mismatch (every qubit moves in this workload).
    initial[0] = initial[0] == 0 ? 1 : 0;
    MachineSchedule copy(machine_, initial);
    for (const auto &instruction : result_.schedule.instructions()) {
        if (const auto *layer = std::get_if<OneQLayerOp>(&instruction))
            copy.addOneQLayer(layer->gate_count, layer->depth);
        else if (const auto *op = std::get_if<MoveBatchOp>(&instruction))
            copy.addMoveBatch(op->batch);
        else
            copy.addRydberg(std::get<RydbergOp>(instruction).gates,
                            std::get<RydbergOp>(instruction).block_index);
    }
    EXPECT_THROW(validateSchedule(copy), ValidationError);
}

} // namespace
} // namespace powermove
