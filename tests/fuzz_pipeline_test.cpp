/** @file Randomized end-to-end fuzzing of the whole compilation stack.
 *
 * Generates random circuits (random block sizes, random gate pairs,
 * random 1Q layers, occasional barriers and repeated gates), compiles
 * them under every configuration axis, and validates the emitted
 * machine program. Any router/grouping/scheduling bug that produces an
 * illegal or incomplete schedule fails the hardware validator here.
 *
 * The JobService sweep additionally randomizes the service axes —
 * priority, deadline, and a shared on-disk cache directory — and pins
 * the determinism contract: whatever path a job takes through the async
 * service, its schedule is byte-identical to a single-threaded
 * effectiveOptions() replay.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "compiler/powermove.hpp"
#include "common/rng.hpp"
#include "enola/enola.hpp"
#include "isa/validator.hpp"
#include "service/disk_cache.hpp"
#include "service/job_service.hpp"

namespace powermove {
namespace {

Circuit
randomCircuit(std::size_t num_qubits, std::size_t num_moments,
              std::uint64_t seed)
{
    Rng rng(seed);
    Circuit circuit(num_qubits, "fuzz-" + std::to_string(seed));
    for (std::size_t m = 0; m < num_moments; ++m) {
        const auto kind = rng.nextBelow(10);
        if (kind < 2) {
            // Sparse 1Q layer.
            const std::size_t count = 1 + rng.nextBelow(num_qubits);
            for (std::size_t g = 0; g < count; ++g) {
                circuit.append(OneQGate{
                    rng.nextBool(0.5) ? OneQKind::H : OneQKind::Rz,
                    static_cast<QubitId>(rng.nextBelow(num_qubits)),
                    rng.nextDouble()});
            }
        } else if (kind < 3) {
            circuit.barrier();
        } else {
            // Random CZ block; duplicates and overlapping gates allowed.
            const std::size_t count = 1 + rng.nextBelow(num_qubits);
            for (std::size_t g = 0; g < count; ++g) {
                const auto a =
                    static_cast<QubitId>(rng.nextBelow(num_qubits));
                const auto b =
                    static_cast<QubitId>(rng.nextBelow(num_qubits));
                if (a != b)
                    circuit.append(CzGate{a, b});
            }
        }
    }
    return circuit;
}

struct FuzzCase
{
    std::uint64_t seed;
    std::size_t num_qubits;
    bool use_storage;
    std::size_t num_aods;
    RoutingStrategy routing;
    std::uint32_t reuse_lookahead;
    PlacementStrategy placement;
    StagePartitionStrategy stage_partition;
    std::uint32_t routing_window = 8;
    ResidencyPolicy residency = ResidencyPolicy::Lookahead;
};

class PipelineFuzz : public ::testing::TestWithParam<FuzzCase>
{};

TEST_P(PipelineFuzz, PowerMoveSchedulesValidate)
{
    const auto param = GetParam();
    const Circuit circuit =
        randomCircuit(param.num_qubits, 12, param.seed);
    const Machine machine(MachineConfig::forQubits(param.num_qubits));
    CompilerOptions options;
    options.use_storage = param.use_storage;
    options.num_aods = param.num_aods;
    options.seed = param.seed * 17 + 3;
    options.routing = param.routing;
    options.reuse_lookahead = param.reuse_lookahead;
    options.placement = param.placement;
    options.stage_partition = param.stage_partition;
    options.routing_window = param.routing_window;
    options.residency = param.residency;
    // A tight budget still exercises greedy + refinement while keeping
    // the case count x placement sweep cheap.
    options.placement_refine_iters = 8;
    const PowerMoveCompiler compiler(machine, options);
    const auto result = compiler.compile(circuit);
    EXPECT_NO_THROW(validateAgainstCircuit(result.schedule, circuit))
        << "seed=" << param.seed;
    EXPECT_GT(result.metrics.fidelity(), 0.0);
    if (param.use_storage && param.routing != RoutingStrategy::Reuse) {
        // Continuous semantics (shared by the fast path and every
        // windowed candidate) keep every idle qubit out of the compute
        // zone during pulses; atom reuse deliberately trades excitation
        // exposures for saved storage round trips.
        EXPECT_EQ(result.metrics.excitation_exposures, 0u);
    }
}

TEST_P(PipelineFuzz, EnolaSchedulesValidate)
{
    const auto param = GetParam();
    if (param.num_aods > 1)
        GTEST_SKIP() << "baseline is evaluated with one AOD";
    if (param.routing != RoutingStrategy::Continuous)
        GTEST_SKIP() << "the baseline has no routing-strategy axis";
    const Circuit circuit =
        randomCircuit(param.num_qubits, 12, param.seed);
    const Machine machine(MachineConfig::forQubits(param.num_qubits));
    EnolaOptions options;
    options.movement = param.use_storage ? EnolaMovement::Mis
                                         : EnolaMovement::Sequential;
    const auto result = EnolaCompiler(machine, options).compile(circuit);
    EXPECT_NO_THROW(validateAgainstCircuit(result.schedule, circuit))
        << "seed=" << param.seed;
}

/** One disk-cache dir shared by every fuzz case that enables the tier. */
const std::string &
sharedFuzzCacheDir()
{
    static const std::string dir = [] {
        namespace fs = std::filesystem;
        const fs::path path =
            fs::temp_directory_path() /
            ("powermove_fuzz_cache_" +
             std::to_string(static_cast<unsigned long>(::getpid())));
        fs::remove_all(path);
        fs::create_directories(path);
        return path.string();
    }();
    return dir;
}

TEST_P(PipelineFuzz, JobServiceMatchesEffectiveOptionsReplay)
{
    const auto param = GetParam();
    const Circuit circuit =
        randomCircuit(param.num_qubits, 12, param.seed);
    CompilerOptions options;
    options.use_storage = param.use_storage;
    options.num_aods = param.num_aods;
    options.seed = param.seed * 17 + 3;
    options.routing = param.routing;
    options.reuse_lookahead = param.reuse_lookahead;
    options.placement = param.placement;
    options.stage_partition = param.stage_partition;
    options.routing_window = param.routing_window;
    options.residency = param.residency;
    options.placement_refine_iters = 8;
    const service::CompileJob job{
        circuit, MachineConfig::forQubits(param.num_qubits), options};

    // Randomize the service axes from the case seed: shard/worker
    // geometry, priority, deadline, and whether the shared disk cache
    // participates. Submitting the same job twice exercises a second
    // tier (coalesced or memory) in the same case.
    Rng rng(param.seed ^ 0x6a6f627376ULL); // "jobsv"
    service::JobServiceOptions service_options;
    service_options.num_shards = 1 + rng.nextBelow(3);
    service_options.workers_per_shard = 1 + rng.nextBelow(2);
    if (rng.nextBool(0.5))
        service_options.cache_dir = sharedFuzzCacheDir();
    const int priority = static_cast<int>(rng.nextBelow(11)) - 5;
    // Most jobs run without a deadline or with a generous one; a slice
    // gets a sub-microsecond deadline that may legitimately expire.
    const double deadline_ms = rng.nextBool(0.2)   ? 1e-6
                               : rng.nextBool(0.5) ? 60000.0
                                                   : 0.0;

    service::JobService svc(service_options);
    service::JobTicket first = svc.submit(job, priority, deadline_ms);
    service::JobTicket second = svc.submit(job, priority, deadline_ms);

    const Machine machine(job.machine);
    const PowerMoveCompiler direct(machine,
                                   service::effectiveOptions(job));
    const std::string replay_bytes =
        service::serializeResultWitness(direct.compile(circuit));

    for (service::JobTicket *ticket : {&first, &second}) {
        try {
            const service::JobResult out = ticket->result.get();
            ASSERT_TRUE(out.result);
            EXPECT_EQ(service::serializeResultWitness(*out.result), replay_bytes)
                << "seed=" << param.seed;
        } catch (const service::ExpiredError &) {
            // Only the instant deadline may expire, and the record must
            // say so.
            EXPECT_LE(deadline_ms, 1e-6) << "seed=" << param.seed;
            const auto status = svc.status(ticket->id);
            ASSERT_TRUE(status.has_value());
            EXPECT_EQ(status->state, service::JobState::Expired);
        }
    }
}

std::vector<FuzzCase>
makeCases()
{
    // The routing axis samples both strategies everywhere, plus window
    // extremes for reuse (1 = hold only for the very next stage; 16 =
    // effectively unbounded for 12-moment circuits); reuse with
    // use_storage = false exercises the continuous fallback. The
    // placement and stage-partition axes rotate through every strategy
    // across the cases (rather than multiplying the count out), so each
    // value sees every qubit count, both zone configurations, and both
    // routers somewhere in the sweep.
    constexpr PlacementStrategy kPlacements[] = {
        PlacementStrategy::RowMajor,
        PlacementStrategy::ColumnInterleaved,
        PlacementStrategy::UsageFrequency,
        PlacementStrategy::RoutingAware,
    };
    constexpr StagePartitionStrategy kPartitions[] = {
        StagePartitionStrategy::Coloring,
        StagePartitionStrategy::Linear,
        StagePartitionStrategy::Balanced,
    };
    // The residency axis rotates through every policy across the reuse
    // cases (3 per group, 4-cycle → each policy meets every window size,
    // qubit count, and zone configuration somewhere in the sweep).
    constexpr ResidencyPolicy kResidencies[] = {
        ResidencyPolicy::Lookahead,
        ResidencyPolicy::Lru,
        ResidencyPolicy::Lti,
        ResidencyPolicy::Fidelity,
    };
    std::vector<FuzzCase> cases;
    std::uint64_t seed = 1;
    std::size_t group = 0;
    // Each (n, storage, aods) group appends a fixed case count, so a
    // plain size-mod rotation could pin a routing config to one fixed
    // placement forever; the per-group offset de-aligns the two cycles.
    // The 3-cycle stage-partition rotation is coprime to the group size,
    // so it de-aligns from the routing pattern on its own.
    const auto next_placement = [&] {
        return kPlacements[(cases.size() + group) % std::size(kPlacements)];
    };
    const auto next_partition = [&] {
        return kPartitions[cases.size() % std::size(kPartitions)];
    };
    for (const std::size_t n : {5u, 9u, 16u, 25u, 40u}) {
        for (const bool storage : {false, true}) {
            for (const std::size_t aods : {1u, 3u}) {
                cases.push_back(
                    {seed++, n, storage, aods, RoutingStrategy::Continuous,
                     4, next_placement(), next_partition()});
                for (const std::uint32_t window : {1u, 4u, 16u}) {
                    cases.push_back({seed++, n, storage, aods,
                                     RoutingStrategy::Reuse, window,
                                     next_placement(), next_partition(), 8,
                                     kResidencies[(cases.size() + group) %
                                                  std::size(kResidencies)]});
                }
                // The incremental fast path sees the same axis sweep as
                // the reference it must mirror.
                cases.push_back(
                    {seed++, n, storage, aods, RoutingStrategy::Fast, 4,
                     next_placement(), next_partition()});
                // Windowed search at the degenerate and a real width.
                for (const std::uint32_t window : {1u, 4u}) {
                    cases.push_back({seed++, n, storage, aods,
                                     RoutingStrategy::Windowed, 4,
                                     next_placement(), next_partition(),
                                     window});
                }
                ++group;
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Random, PipelineFuzz,
                         ::testing::ValuesIn(makeCases()));

} // namespace
} // namespace powermove
