/** @file Unit and property tests for the graph library. */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/graph.hpp"
#include "common/rng.hpp"

namespace powermove {
namespace {

TEST(GraphTest, EmptyGraph)
{
    Graph g;
    EXPECT_EQ(g.numVertices(), 0u);
    EXPECT_EQ(g.numEdges(), 0u);
    EXPECT_EQ(g.maxDegree(), 0u);
}

TEST(GraphTest, AddEdgeBasics)
{
    Graph g(4);
    EXPECT_TRUE(g.addEdge(0, 1));
    EXPECT_TRUE(g.addEdge(1, 2));
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 0));
    EXPECT_FALSE(g.hasEdge(0, 2));
}

TEST(GraphTest, RejectsSelfLoopsAndDuplicates)
{
    Graph g(3);
    EXPECT_FALSE(g.addEdge(1, 1));
    EXPECT_TRUE(g.addEdge(0, 1));
    EXPECT_FALSE(g.addEdge(1, 0));
    EXPECT_EQ(g.numEdges(), 1u);
}

TEST(GraphTest, DegreeAndMaxDegree)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(0, 3);
    EXPECT_EQ(g.degree(0), 3u);
    EXPECT_EQ(g.degree(1), 1u);
    EXPECT_EQ(g.maxDegree(), 3u);
}

TEST(GraphTest, EdgesAreCanonical)
{
    Graph g(3);
    g.addEdge(2, 0);
    ASSERT_EQ(g.edges().size(), 1u);
    EXPECT_EQ(g.edges()[0], (std::pair<Graph::Vertex, Graph::Vertex>{0, 2}));
}

TEST(GraphTest, OutOfRangeVertexPanics)
{
    Graph g(2);
    EXPECT_THROW(g.addEdge(0, 5), InternalError);
    EXPECT_THROW(g.adjacents(9), InternalError);
}

TEST(GraphTest, VerticesByDegreeDescOrder)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(0, 3);
    g.addEdge(1, 2);
    const auto order = verticesByDegreeDesc(g);
    EXPECT_EQ(order.front(), 0u);
    EXPECT_EQ(order.back(), 3u);
}

TEST(GreedyColoringTest, TriangleNeedsThreeColors)
{
    Graph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(0, 2);
    const auto coloring = greedyColoring(g, verticesByDegreeDesc(g));
    EXPECT_TRUE(isProperColoring(g, coloring));
    EXPECT_EQ(numColors(coloring), 3u);
}

TEST(GreedyColoringTest, PathIsTwoColorable)
{
    Graph g(5);
    for (Graph::Vertex v = 0; v + 1 < 5; ++v)
        g.addEdge(v, v + 1);
    const auto coloring = greedyColoring(g, verticesByDegreeDesc(g));
    EXPECT_TRUE(isProperColoring(g, coloring));
    EXPECT_LE(numColors(coloring), 2u);
}

TEST(GreedyColoringTest, EdgelessGraphUsesOneColor)
{
    Graph g(6);
    const auto coloring = greedyColoring(g, verticesByDegreeDesc(g));
    EXPECT_EQ(numColors(coloring), 1u);
}

TEST(IsProperColoringTest, DetectsViolations)
{
    Graph g(2);
    g.addEdge(0, 1);
    EXPECT_FALSE(isProperColoring(g, {0, 0}));
    EXPECT_TRUE(isProperColoring(g, {0, 1}));
    EXPECT_FALSE(isProperColoring(g, {0}));
}

/** Property sweep: proper coloring within the Brooks-style bound. */
class ColoringProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ColoringProperty, RandomGraphsColorProperly)
{
    Rng rng(GetParam());
    const std::size_t n = 20 + GetParam() % 40;
    const Graph g = randomGnp(n, 0.3, rng);
    const auto coloring = greedyColoring(g, verticesByDegreeDesc(g));
    EXPECT_TRUE(isProperColoring(g, coloring));
    EXPECT_LE(numColors(coloring), static_cast<std::uint32_t>(g.maxDegree() + 1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColoringProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

/** Property sweep: the configuration model yields d-regular graphs. */
class RegularGraphProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{};

TEST_P(RegularGraphProperty, AllDegreesEqualD)
{
    const auto [n, d] = GetParam();
    Rng rng(n * 1000 + d);
    const Graph g = randomRegularGraph(n, d, rng);
    EXPECT_EQ(g.numVertices(), n);
    EXPECT_EQ(g.numEdges(), n * d / 2);
    for (Graph::Vertex v = 0; v < n; ++v)
        EXPECT_EQ(g.degree(v), d);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RegularGraphProperty,
    ::testing::Values(std::pair<std::size_t, std::size_t>{10, 3},
                      std::pair<std::size_t, std::size_t>{30, 3},
                      std::pair<std::size_t, std::size_t>{30, 4},
                      std::pair<std::size_t, std::size_t>{50, 4},
                      std::pair<std::size_t, std::size_t>{100, 3},
                      std::pair<std::size_t, std::size_t>{16, 5}));

TEST(RandomRegularGraphTest, RejectsImpossibleParameters)
{
    Rng rng(1);
    EXPECT_THROW(randomRegularGraph(5, 5, rng), ConfigError);
    EXPECT_THROW(randomRegularGraph(5, 3, rng), ConfigError); // odd n*d
}

TEST(RandomGnpTest, ProbabilityExtremes)
{
    Rng rng(4);
    const Graph empty = randomGnp(10, 0.0, rng);
    EXPECT_EQ(empty.numEdges(), 0u);
    const Graph full = randomGnp(10, 1.0, rng);
    EXPECT_EQ(full.numEdges(), 45u);
}

TEST(RandomGnpTest, EdgeCountNearExpectation)
{
    Rng rng(8);
    const std::size_t n = 40;
    const Graph g = randomGnp(n, 0.5, rng);
    const double expected = 0.5 * static_cast<double>(n * (n - 1) / 2);
    EXPECT_NEAR(static_cast<double>(g.numEdges()), expected, expected * 0.25);
}

TEST(RandomGraphTest, DeterministicForFixedSeed)
{
    Rng rng1(99);
    Rng rng2(99);
    const Graph a = randomGnp(20, 0.4, rng1);
    const Graph b = randomGnp(20, 0.4, rng2);
    EXPECT_EQ(a.edges(), b.edges());
}

} // namespace
} // namespace powermove
