/** @file Keeps docs/strategies.md in sync with the strategy enums.
 *
 * docs/strategies.md documents every strategy axis (one `## \`axis\``
 * section per axis, one `| \`value\` |` table row per value) and
 * promises the names cannot drift from `strategyCatalog()` — this test
 * is that promise, in both directions: every catalog axis/value must
 * be documented, and every documented axis/value must exist in the
 * catalog. The CI docs-check job runs it next to the dead-link
 * checker.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "compiler/strategies.hpp"

namespace powermove {
namespace {

std::string
strategiesDocPath()
{
#ifdef POWERMOVE_SOURCE_DIR
    return std::string(POWERMOVE_SOURCE_DIR) + "/docs/strategies.md";
#else
    // Fallback for ad-hoc builds: relative to the build directory.
    return "../docs/strategies.md";
#endif
}

/** `## \`axis\`` sections -> the backticked first-column table cells. */
std::map<std::string, std::vector<std::string>>
parseDocumentedAxes(std::istream &in)
{
    std::map<std::string, std::vector<std::string>> axes;
    std::string line;
    std::string current;
    while (std::getline(in, line)) {
        if (line.rfind("## `", 0) == 0) {
            const auto close = line.find('`', 4);
            if (close == std::string::npos)
                continue;
            current = line.substr(4, close - 4);
            axes[current]; // a section with no rows still registers
            continue;
        }
        if (current.empty() || line.rfind("| `", 0) != 0)
            continue;
        const auto close = line.find('`', 3);
        if (close == std::string::npos)
            continue;
        axes[current].push_back(line.substr(3, close - 3));
    }
    return axes;
}

TEST(DocsSyncTest, StrategiesDocMatchesCatalogBothWays)
{
    std::ifstream in(strategiesDocPath());
    ASSERT_TRUE(in) << "cannot open " << strategiesDocPath();
    const auto documented = parseDocumentedAxes(in);

    const auto catalog = strategyCatalog();
    ASSERT_FALSE(catalog.empty());

    std::set<std::string> catalog_axes;
    for (const StrategyCatalogEntry &entry : catalog) {
        catalog_axes.insert(std::string(entry.dimension));
        const auto it = documented.find(std::string(entry.dimension));
        ASSERT_NE(it, documented.end())
            << "axis '" << entry.dimension
            << "' is missing from docs/strategies.md";

        const std::set<std::string> doc_values(it->second.begin(),
                                               it->second.end());
        for (const std::string_view value : entry.values) {
            EXPECT_TRUE(doc_values.count(std::string(value)))
                << "value '" << value << "' of axis '" << entry.dimension
                << "' is missing from docs/strategies.md";
        }
        for (const std::string &value : it->second) {
            bool known = false;
            for (const std::string_view catalog_value : entry.values)
                known = known || catalog_value == value;
            EXPECT_TRUE(known)
                << "docs/strategies.md documents unknown value '" << value
                << "' for axis '" << entry.dimension << "'";
        }
        // Defaults first is the documented ordering contract.
        ASSERT_FALSE(it->second.empty());
        EXPECT_EQ(it->second.front(), entry.values.front())
            << "axis '" << entry.dimension
            << "': the catalog default must be the first documented row";
    }

    for (const auto &[axis, values] : documented) {
        EXPECT_TRUE(catalog_axes.count(axis))
            << "docs/strategies.md documents unknown axis '" << axis << "'";
        (void)values;
    }
}

} // namespace
} // namespace powermove
